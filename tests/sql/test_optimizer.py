"""Optimizer rules: folding, pushdown/reordering, pruning."""

import numpy as np
import pytest

from repro.core.session import Session
from repro.sql import bound as b
from repro.sql import logical
from repro.sql.binder import Binder
from repro.sql.optimizer import optimize
from repro.sql.optimizer.folding import fold
from repro.sql.parser import parse
from repro.storage import types as dt


@pytest.fixture
def opt_session():
    s = Session()
    s.sql.register_dict(
        {"a": [1, 2, 3], "b": [1.0, 2.0, 3.0], "s": ["x", "y", "z"],
         "img": np.zeros((3, 2, 4, 4), dtype=np.float32)}, "t"
    )
    s.sql.register_dict({"a": [1, 2], "c": [5.0, 6.0]}, "u")

    @s.udf("float", name="expensive")
    def expensive(x):
        return x

    return s


def bind(session, sql, **config):
    plan = Binder(session.catalog, session.functions).bind(parse(sql))
    return optimize(plan, config or None)


def find(plan, kind):
    found = []

    def walk(node):
        if isinstance(node, kind):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return found


class TestFolding:
    def test_arith_folds(self):
        expr = b.BBinary("+", b.BLiteral(2, dt.INT), b.BLiteral(3, dt.INT), dt.INT)
        assert fold(expr).value == 5

    def test_comparison_folds(self):
        expr = b.BBinary("<", b.BLiteral(2, dt.INT), b.BLiteral(3, dt.INT), dt.BOOL)
        assert fold(expr).value is True

    def test_and_short_circuit_true(self):
        col = b.BColumn(0, "a", dt.BOOL)
        expr = b.BBinary("AND", b.BLiteral(True, dt.BOOL), col, dt.BOOL)
        assert fold(expr) is col

    def test_and_short_circuit_false(self):
        col = b.BColumn(0, "a", dt.BOOL)
        expr = b.BBinary("AND", col, b.BLiteral(False, dt.BOOL), dt.BOOL)
        assert fold(expr).value is False

    def test_or_short_circuit(self):
        col = b.BColumn(0, "a", dt.BOOL)
        expr = b.BBinary("OR", b.BLiteral(True, dt.BOOL), col, dt.BOOL)
        assert fold(expr).value is True

    def test_nested_folding_in_plan(self, opt_session):
        plan = bind(opt_session, "SELECT a FROM t WHERE a > 1 + 2")
        filters = find(plan, logical.Filter)
        assert filters
        predicate = filters[0].predicate
        assert isinstance(predicate.right, b.BLiteral)
        assert predicate.right.value == 3


class TestPushdown:
    def test_filter_below_projection(self, opt_session):
        plan = bind(opt_session,
                    "SELECT x FROM (SELECT a AS x, b FROM t) WHERE x > 1")
        # Filter must sit below the outer projection, directly over the scan.
        filters = find(plan, logical.Filter)
        assert filters
        assert isinstance(filters[0].input, (logical.Scan, logical.Project))
        scans_under_filter = find(filters[0], logical.Scan)
        assert scans_under_filter

    def test_filters_merge(self, opt_session):
        plan = bind(opt_session,
                    "SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) WHERE x < 5")
        assert len(find(plan, logical.Filter)) == 1

    def test_join_conjunct_routing(self, opt_session):
        plan = bind(opt_session,
                    "SELECT t.s FROM t JOIN u ON t.a = u.a "
                    "WHERE t.b > 1 AND u.c < 6")
        join = find(plan, logical.JoinPlan)[0]
        # Each side should have received its own filter.
        assert find(join.left, logical.Filter)
        assert find(join.right, logical.Filter)

    def test_cheap_predicate_ordered_before_udf(self, opt_session):
        plan = bind(opt_session,
                    "SELECT a FROM t WHERE expensive(b) > 0 AND a = 1")
        predicate = find(plan, logical.Filter)[0].predicate
        # AND tree: left conjunct must be the cheap one.
        assert isinstance(predicate, b.BBinary) and predicate.op == "AND"
        assert not predicate.left.contains_udf()
        assert predicate.right.contains_udf()

    def test_pushdown_can_be_disabled(self, opt_session):
        plan = bind(opt_session,
                    "SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) WHERE x < 5",
                    disable_rules=("pushdown", "prune"))
        assert len(find(plan, logical.Filter)) == 2


class TestPruning:
    def test_scan_narrowed_to_used_columns(self, opt_session):
        plan = bind(opt_session, "SELECT a FROM t WHERE b > 1")
        parent_projects = find(plan, logical.Project)
        # Some projection above the scan keeps only {a, b} (img, s dropped).
        narrowest = min(
            (p for p in parent_projects if find(p, logical.Scan)),
            key=lambda p: len(p.schema),
        )
        kept = {name for name, _ in narrowest.schema}
        assert "img" not in kept
        assert "s" not in kept

    def test_aggregate_input_pruned(self, opt_session):
        plan = bind(opt_session, "SELECT s, COUNT(*) FROM t GROUP BY s")
        agg = find(plan, logical.Aggregate)[0]
        assert len(agg.input.schema) == 1        # only the group key column

    def test_tensor_column_never_chosen_for_counting(self, opt_session):
        plan = bind(opt_session, "SELECT COUNT(*) FROM t")
        agg = find(plan, logical.Aggregate)[0]
        (name, typ), = agg.input.schema
        assert typ.kind != "tensor"

    def test_plan_still_executes_after_pruning(self, opt_session):
        result = opt_session.spark.query(
            "SELECT s, COUNT(*) FROM t WHERE a >= 2 GROUP BY s ORDER BY s"
        ).run(toPandas=True)
        assert result["s"].tolist() == ["y", "z"]
        assert result["COUNT(*)"].tolist() == [1, 1]

    def test_join_pruning_keeps_keys(self, opt_session):
        result = opt_session.spark.query(
            "SELECT t.s FROM t JOIN u ON t.a = u.a ORDER BY t.s"
        ).run(toPandas=True)
        assert result["s"].tolist() == ["x", "y"]
