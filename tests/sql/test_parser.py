"""Parser: statement shapes, precedence, the paper's listings."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import nodes
from repro.sql.parser import parse


class TestBasicSelect:
    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, nodes.Star)
        assert isinstance(stmt.from_clause, nodes.TableRef)

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_clause.alias == "u"

    def test_qualified_columns(self):
        stmt = parse("SELECT t.a FROM t")
        ref = stmt.items[0].expr
        assert ref.table == "t" and ref.name == "a"

    def test_limit_offset(self):
        stmt = parse("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert stmt.limit == 5 and stmt.offset == 2

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_group_by_and_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_trailing_semicolon_ok(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t extra nonsense ,")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse("SELECT 1 + 2 * 3 FROM t").items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        stmt = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parentheses_override(self):
        expr = parse("SELECT (1 + 2) * 3 FROM t").items[0].expr
        assert expr.op == "*"

    def test_count_star_vs_multiplication(self):
        call = parse("SELECT COUNT(*) FROM t").items[0].expr
        assert isinstance(call, nodes.FuncCall)
        assert isinstance(call.args[0], nodes.Star)
        mul = parse("SELECT a * b FROM t").items[0].expr
        assert mul.op == "*"

    def test_unary_minus(self):
        expr = parse("SELECT -a * 2 FROM t").items[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, nodes.UnaryOp)

    def test_between_in_like_is_null(self):
        stmt = parse(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) "
            "AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (3)"
        )
        conjuncts = []
        def collect(e):
            if isinstance(e, nodes.BinaryOp) and e.op == "AND":
                collect(e.left)
                collect(e.right)
            else:
                conjuncts.append(e)
        collect(stmt.where)
        kinds = {type(c).__name__ for c in conjuncts}
        assert kinds == {"Between", "InList", "Like", "IsNull"}
        negated_in = [c for c in conjuncts
                      if isinstance(c, nodes.InList) and c.negated]
        assert len(negated_in) == 1

    def test_case_when(self):
        expr = parse(
            "SELECT CASE WHEN a > 1 THEN 10 WHEN a > 0 THEN 5 ELSE 0 END FROM t"
        ).items[0].expr
        assert isinstance(expr, nodes.Case)
        assert len(expr.whens) == 2
        assert expr.else_ is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE ELSE 1 END FROM t")

    def test_cast(self):
        expr = parse("SELECT CAST(a AS float) FROM t").items[0].expr
        assert isinstance(expr, nodes.Cast)
        assert expr.type_name == "float"

    def test_boolean_and_null_literals(self):
        items = parse("SELECT TRUE, FALSE, NULL FROM t").items
        assert items[0].expr.value is True
        assert items[1].expr.value is False
        assert items[2].expr.value is None

    def test_scientific_number_literal(self):
        expr = parse("SELECT 1.5e2 FROM t").items[0].expr
        assert expr.value == 150.0


class TestFromClause:
    def test_join_with_on(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        join = stmt.from_clause
        assert isinstance(join, nodes.Join)
        assert join.kind == "INNER"

    def test_left_outer_join(self):
        join = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y").from_clause
        assert join.kind == "LEFT"

    def test_cross_join_no_condition(self):
        join = parse("SELECT * FROM a CROSS JOIN b").from_clause
        assert join.kind == "CROSS"
        assert join.condition is None

    def test_chained_joins(self):
        join = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        ).from_clause
        assert isinstance(join.left, nodes.Join)

    def test_subquery(self):
        stmt = parse("SELECT * FROM (SELECT a FROM t) sub")
        assert isinstance(stmt.from_clause, nodes.SubqueryRef)
        assert stmt.from_clause.alias == "sub"

    def test_table_function(self):
        stmt = parse("SELECT * FROM parse_mnist_grid(MNIST_Grid)")
        tvf = stmt.from_clause
        assert isinstance(tvf, nodes.TableFunction)
        assert tvf.name == "parse_mnist_grid"


class TestPaperListings:
    """Each SQL snippet from the paper must parse."""

    def test_listing_2_aggregate(self):
        parse("SELECT Digits, Sizes, COUNT(*) FROM numbers "
              "GROUP BY Digits, Sizes")

    def test_listing_6_mnistgrid(self):
        parse("SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) "
              "GROUP BY Digit, Size")

    def test_listing_8_ocr(self):
        stmt = parse(
            'SELECT AVG(SepalLength), AVG(PetalLength) '
            'FROM (SELECT extract_table(images) FROM Document '
            'WHERE timestamp = "2022:08:10")'
        )
        inner = stmt.from_clause.query
        assert isinstance(inner.items[0].expr, nodes.FuncCall)

    def test_listing_9_llp(self):
        parse("SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) "
              "GROUP BY Income")

    def test_fig2_filter_query(self):
        parse('SELECT COUNT(*) FROM Attachments '
              'WHERE image_text_similarity("receipt", images) > 0.80')

    def test_fig2_topk_query(self):
        stmt = parse(
            'SELECT images, image_text_similarity("KFC Receipt", images) '
            'AS score FROM Attachments ORDER BY score DESC LIMIT 2'
        )
        assert stmt.limit == 2
        assert stmt.order_by[0].ascending is False


class TestVectorIndexDdl:
    def test_create_vector_index(self):
        stmt = parse("CREATE VECTOR INDEX idx ON Attachments(images) "
                     "WITH (cells=32, nprobe=4)")
        assert isinstance(stmt, nodes.CreateVectorIndexStmt)
        assert stmt.name == "idx"
        assert stmt.table == "Attachments"
        assert stmt.column == "images"
        assert stmt.options == {"cells": 32, "nprobe": 4}

    def test_create_without_options(self):
        stmt = parse("CREATE VECTOR INDEX idx ON t(c);")
        assert stmt.options == {}

    def test_create_requires_vector_kind(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE INDEX idx ON t(c)")

    def test_drop_index(self):
        stmt = parse("DROP INDEX idx")
        assert isinstance(stmt, nodes.DropIndexStmt)
        assert stmt.name == "idx" and not stmt.if_exists
        assert parse("DROP INDEX IF EXISTS idx").if_exists

    def test_show_indexes(self):
        assert isinstance(parse("SHOW INDEXES"), nodes.ShowIndexesStmt)

    def test_option_values_must_be_literals(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE VECTOR INDEX idx ON t(c) WITH (cells=x)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("DROP INDEX idx extra")

    def test_ddl_words_stay_valid_identifiers(self):
        # DDL words are soft keywords: schemas using them keep parsing.
        stmt = parse("SELECT index, with, show FROM create WHERE exists > 2")
        assert [i.expr.name for i in stmt.items] == ["index", "with", "show"]
        assert stmt.from_clause.name == "create"
