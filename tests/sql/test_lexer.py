"""Tokenizer behaviour."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


class TestLexer:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where")[0] == ("KEYWORD", "SELECT")
        assert kinds("select FROM Where")[2] == ("KEYWORD", "WHERE")

    def test_identifiers_preserve_case(self):
        assert ("IDENT", "MyTable") in kinds("SELECT x FROM MyTable")

    def test_numbers(self):
        assert kinds("1 2.5 .5 1e3 2.5E-2") == [
            ("NUMBER", "1"), ("NUMBER", "2.5"), ("NUMBER", ".5"),
            ("NUMBER", "1e3"), ("NUMBER", "2.5E-2"),
        ]

    def test_single_and_double_quoted_strings(self):
        assert kinds("'abc'") == [("STRING", "abc")]
        assert kinds('"2022:08:10"') == [("STRING", "2022:08:10")]

    def test_doubled_quote_escape(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_symbols_longest_match(self):
        values = [v for _, v in kinds("a <> b != c <= d >= e")]
        assert "<>" in values and "!=" in values
        assert "<=" in values and ">=" in values

    def test_comments_skipped(self):
        tokens = kinds("SELECT 1 -- a comment\n + 2")
        assert ("NUMBER", "2") in tokens

    def test_backtick_identifiers(self):
        assert ("IDENT", "weird name") in kinds("SELECT `weird name`")

    def test_unknown_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @x")

    def test_eof_token_terminates(self):
        assert tokenize("SELECT")[-1].kind == "EOF"
