"""Binder: name/type resolution, plan shapes, UDF placement rules."""

import pytest

from repro.errors import BindError
from repro.core.session import Session
from repro.sql import logical
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage import types as dt


@pytest.fixture
def bound_session():
    s = Session()
    s.sql.register_dict(
        {"a": [1, 2, 3], "b": [1.0, 2.0, 3.0], "s": ["x", "y", "z"]}, "t"
    )
    s.sql.register_dict({"a": [1, 2], "c": [10.0, 20.0]}, "u")

    @s.udf("float", name="score")
    def score(x):
        return x * 2.0

    @s.udf("P float, Q float", name="expand")
    def expand(x):
        return x, x

    return s


def bind(session, sql):
    return Binder(session.catalog, session.functions).bind(parse(sql))


class TestResolution:
    def test_unknown_table(self, bound_session):
        with pytest.raises(Exception):
            bind(bound_session, "SELECT 1 FROM missing")

    def test_unknown_column_lists_available(self, bound_session):
        with pytest.raises(BindError, match="available"):
            bind(bound_session, "SELECT nope FROM t")

    def test_case_insensitive_columns(self, bound_session):
        plan = bind(bound_session, "SELECT A FROM t")
        # Output label follows the query text; resolution is case-insensitive.
        assert plan.schema[0][0].lower() == "a"

    def test_qualified_and_alias_resolution(self, bound_session):
        plan = bind(bound_session, "SELECT tt.a FROM t tt")
        assert plan.schema[0][0] == "a"
        with pytest.raises(BindError):
            bind(bound_session, "SELECT zz.a FROM t tt")

    def test_ambiguous_column_in_join(self, bound_session):
        with pytest.raises(BindError, match="ambiguous"):
            bind(bound_session, "SELECT a FROM t JOIN u ON t.a = u.a")

    def test_type_inference(self, bound_session):
        plan = bind(bound_session, "SELECT a + 1, b / 2, a = 1, s FROM t")
        types = [t for _, t in plan.schema]
        assert types[0] == dt.INT
        assert types[1] == dt.FLOAT
        assert types[2] == dt.BOOL
        assert types[3] == dt.STRING

    def test_where_must_be_boolean(self, bound_session):
        with pytest.raises(BindError, match="bool"):
            bind(bound_session, "SELECT a FROM t WHERE a + 1")

    def test_string_arithmetic_rejected(self, bound_session):
        with pytest.raises(BindError):
            bind(bound_session, "SELECT s * 2 FROM t")


class TestAggregates:
    def test_group_by_schema(self, bound_session):
        plan = bind(bound_session,
                    "SELECT s, COUNT(*), AVG(b) FROM t GROUP BY s")
        assert [n for n, _ in plan.schema] == ["s", "COUNT(*)", "AVG(b)"]
        assert plan.schema[1][1] == dt.INT
        assert plan.schema[2][1] == dt.FLOAT

    def test_non_grouped_column_rejected(self, bound_session):
        with pytest.raises(BindError, match="GROUP BY"):
            bind(bound_session, "SELECT a, COUNT(*) FROM t GROUP BY s")

    def test_aggregate_in_where_rejected(self, bound_session):
        with pytest.raises(BindError):
            bind(bound_session, "SELECT a FROM t WHERE COUNT(*) > 1")

    def test_having_adds_hidden_aggregate(self, bound_session):
        plan = bind(bound_session,
                    "SELECT s FROM t GROUP BY s HAVING SUM(b) > 2")
        # The plan must contain an Aggregate with the hidden SUM slot.
        node = plan
        while not isinstance(node, logical.Aggregate):
            node = node.children()[0]
        assert any(spec.func == "SUM" for spec in node.aggregates)

    def test_identical_aggregates_share_one_slot(self, bound_session):
        plan = bind(bound_session,
                    "SELECT COUNT(*), COUNT(*) + 1 FROM t GROUP BY s")
        node = plan
        while not isinstance(node, logical.Aggregate):
            node = node.children()[0]
        assert len(node.aggregates) == 1

    def test_global_aggregate_no_groups(self, bound_session):
        plan = bind(bound_session, "SELECT COUNT(*), MIN(a) FROM t")
        node = plan
        while not isinstance(node, logical.Aggregate):
            node = node.children()[0]
        assert node.group_exprs == []

    def test_sum_type_follows_argument(self, bound_session):
        plan = bind(bound_session, "SELECT SUM(a), SUM(b) FROM t")
        assert plan.schema[0][1] == dt.INT
        assert plan.schema[1][1] == dt.FLOAT

    def test_order_by_alias_in_aggregate_query(self, bound_session):
        plan = bind(bound_session,
                    "SELECT s, COUNT(*) AS c FROM t GROUP BY s ORDER BY c DESC")
        assert isinstance(plan, logical.Sort)


class TestUdfBinding:
    def test_scalar_udf_type(self, bound_session):
        plan = bind(bound_session, "SELECT score(b) FROM t")
        assert plan.schema[0][1] == dt.FLOAT

    def test_unknown_function(self, bound_session):
        with pytest.raises(BindError, match="unknown function"):
            bind(bound_session, "SELECT nothing(b) FROM t")

    def test_tvf_as_scalar_rejected(self, bound_session):
        with pytest.raises(BindError, match="scalar"):
            bind(bound_session, "SELECT a, expand(b) FROM t")

    def test_tvf_in_from(self, bound_session):
        plan = bind(bound_session, "SELECT P, Q FROM expand(t)")
        assert [n for n, _ in plan.schema] == ["P", "Q"]

    def test_tvf_projection_form(self, bound_session):
        plan = bind(bound_session, "SELECT expand(b) FROM t")
        assert isinstance(plan, logical.TVFScan)

    def test_tvf_unknown_table_arg(self, bound_session):
        with pytest.raises(BindError):
            bind(bound_session, "SELECT P FROM expand(missing_table)")

    def test_builtin_functions(self, bound_session):
        plan = bind(bound_session,
                    "SELECT ABS(a), SQRT(b), UPPER(s), LENGTH(s) FROM t")
        types = [t for _, t in plan.schema]
        assert types == [dt.INT, dt.FLOAT, dt.STRING, dt.INT]

    def test_builtin_arity_check(self, bound_session):
        with pytest.raises(BindError):
            bind(bound_session, "SELECT SQRT(a, b) FROM t")


class TestJoins:
    def test_equi_join_keys_extracted(self, bound_session):
        plan = bind(bound_session,
                    "SELECT t.s FROM t JOIN u ON t.a = u.a")
        node = plan
        while not isinstance(node, logical.JoinPlan):
            node = node.children()[0]
        assert len(node.left_keys) == 1
        assert node.residual is None

    def test_reversed_equi_condition(self, bound_session):
        plan = bind(bound_session, "SELECT t.s FROM t JOIN u ON u.a = t.a")
        node = plan
        while not isinstance(node, logical.JoinPlan):
            node = node.children()[0]
        assert len(node.left_keys) == 1

    def test_residual_condition_kept(self, bound_session):
        plan = bind(bound_session,
                    "SELECT t.s FROM t JOIN u ON t.a = u.a AND t.b < u.c")
        node = plan
        while not isinstance(node, logical.JoinPlan):
            node = node.children()[0]
        assert node.residual is not None

    def test_join_without_on_rejected(self, bound_session):
        with pytest.raises(Exception):
            bind(bound_session, "SELECT t.s FROM t JOIN u")
