"""Dataset generators: shapes, label consistency, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    IRIS_FEATURES,
    LARGE,
    SMALL,
    fonts,
    group_index,
    laplace_counts,
    make_adult,
    make_attachments,
    make_bags,
    make_digits,
    make_documents,
    make_grids,
    make_iris,
    render_digit,
    tiles_of,
    train_test_split,
)


class TestFonts:
    def test_glyph_shape_and_scale(self):
        assert fonts.glyph("5").shape == (7, 5)
        assert fonts.glyph("5", scale=3).shape == (21, 15)

    def test_distinct_digits_have_distinct_bitmaps(self):
        bitmaps = [fonts.glyph(str(d)).tobytes() for d in range(10)]
        assert len(set(bitmaps)) == 10

    def test_render_text_width(self):
        text = fonts.render_text("AB", scale=2, spacing=1)
        assert text.shape == (14, 24)

    def test_unknown_char_renders_blank(self):
        assert fonts.glyph("~").sum() == 0

    def test_paste_clips_at_border(self):
        canvas = np.zeros((5, 5), dtype=np.float32)
        fonts.paste(canvas, np.ones((7, 7), dtype=np.float32), 3, 3)
        assert canvas[:3, :3].sum() == 0
        assert canvas[3:, 3:].sum() == 4


class TestDigits:
    def test_shapes_and_ranges(self):
        data = make_digits(20, np.random.default_rng(0))
        assert data.images.shape == (20, 1, 28, 28)
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0
        assert set(np.unique(data.sizes)).issubset({0, 1})

    def test_size_classes_differ_in_ink(self):
        rng = np.random.default_rng(0)
        small = np.mean([render_digit(5, SMALL, rng).sum() for _ in range(10)])
        large = np.mean([render_digit(5, LARGE, rng).sum() for _ in range(10)])
        assert large > small * 1.5

    def test_fixed_size_class(self):
        data = make_digits(10, np.random.default_rng(0), size_class=LARGE)
        assert (data.sizes == LARGE).all()

    def test_determinism(self):
        a = make_digits(5, np.random.default_rng(7)).images
        b = make_digits(5, np.random.default_rng(7)).images
        np.testing.assert_array_equal(a, b)


class TestGrids:
    def test_counts_match_tiles(self):
        data = make_grids(8, np.random.default_rng(0))
        for i in range(8):
            counts = np.zeros(20)
            for d, s in zip(data.tile_digits[i], data.tile_sizes[i]):
                counts[group_index(d, s)] += 1
            np.testing.assert_array_equal(data.counts[i], counts)

    def test_counts_sum_to_nine(self):
        data = make_grids(5, np.random.default_rng(1))
        np.testing.assert_array_equal(data.counts.sum(axis=1), 9.0)

    def test_tiles_of_layout(self):
        data = make_grids(1, np.random.default_rng(0))
        tiles = tiles_of(data.grids[0])
        assert tiles.shape == (9, 1, 28, 28)
        np.testing.assert_array_equal(tiles[0, 0],
                                      data.grids[0, 0, :28, :28])
        np.testing.assert_array_equal(tiles[5, 0],
                                      data.grids[0, 0, 28:56, 56:84])


class TestAdult:
    def test_schema_and_types(self):
        data = make_adult(200, np.random.default_rng(0))
        assert data.features.shape == (200, 5)
        assert set(np.unique(data.labels)).issubset({0, 1})
        assert "age" in data.frame.columns

    def test_features_learnable_by_linear_model(self):
        # The generator guarantees linear learnability up to its ~8% label
        # noise plus the logistic sampling noise, so a fitted linear model
        # must land well below the ~0.35 majority-class error.
        data = make_adult(2000, np.random.default_rng(0))
        from repro.baselines.regression import train_non_llp
        model = train_non_llp(data.features, data.labels, epochs=20)
        majority_error = min(data.labels.mean(), 1 - data.labels.mean())
        assert model.error(data.features, data.labels) < 0.30
        assert model.error(data.features, data.labels) < majority_error

    def test_split_partitions(self):
        data = make_adult(100, np.random.default_rng(0))
        (tx, ty), (sx, sy) = train_test_split(data, test_fraction=0.25)
        assert len(ty) == 75 and len(sy) == 25
        assert tx.shape[1] == sx.shape[1] == 5


class TestBags:
    @given(st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_counts_conserved(self, bag_size):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(130, 3)).astype(np.float32)
        y = rng.integers(0, 2, size=130)
        bags = make_bags(x, y, bag_size, rng=rng)
        usable = (130 // bag_size) * bag_size
        assert sum(int(b.counts.sum()) for b in bags) == usable
        assert all(b.features.shape == (bag_size, 3) for b in bags)

    def test_bag_size_one_has_unit_counts(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 2)).astype(np.float32)
        y = rng.integers(0, 2, size=10)
        for bag in make_bags(x, y, 1, rng=rng):
            assert bag.counts.sum() == 1.0

    def test_invalid_bag_size(self):
        with pytest.raises(ValueError):
            make_bags(np.zeros((4, 2)), np.zeros(4, dtype=int), 0)

    def test_laplace_noise_scale(self):
        rng = np.random.default_rng(0)
        x = np.zeros((512, 2), dtype=np.float32)
        y = np.zeros(512, dtype=np.int64)
        bags = make_bags(x, y, 8, rng=rng)
        noisy = laplace_counts(bags, epsilon=0.1, rng=np.random.default_rng(1))
        deltas = np.concatenate([n.counts - b.counts
                                 for n, b in zip(noisy, bags)])
        # Laplace(scale=10): mean |delta| = 10.
        assert 6.0 < np.abs(deltas).mean() < 14.0

    def test_laplace_requires_positive_epsilon(self):
        with pytest.raises(ValueError):
            laplace_counts([], epsilon=0.0)


class TestAttachments:
    def test_composition(self):
        data = make_attachments(8, 4, 4, rng=np.random.default_rng(0))
        assert data.images.shape == (16, 3, 200, 300)
        labels = data.labels.tolist()
        assert labels.count("photograph") == 8
        assert labels.count("receipt") == 4
        assert labels.count("logo") == 4
        assert len(data.captions) == 16

    def test_captions_mention_subjects(self):
        data = make_attachments(4, 2, 2, rng=np.random.default_rng(0))
        for caption, subject in zip(data.captions, data.subjects):
            assert subject.lower() in caption.lower()

    def test_pixel_range(self):
        data = make_attachments(2, 2, 2, rng=np.random.default_rng(0))
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0

    def test_receipts_brighter_than_photos(self):
        data = make_attachments(6, 6, 0, rng=np.random.default_rng(0))
        receipts = data.images[data.labels == "receipt"].mean()
        photos = data.images[data.labels == "photograph"].mean()
        assert receipts > photos


class TestDocumentsIris:
    def test_iris_statistics(self):
        iris = make_iris(150, np.random.default_rng(0))
        assert len(iris) == 150
        assert iris.columns[:4] == IRIS_FEATURES
        petal = iris["PetalLength"]
        setosa = petal[:50].mean()
        virginica = petal[100:].mean()
        assert virginica > setosa + 2.0       # species clusters separated

    def test_documents_unique_timestamps_and_truth(self):
        docs = make_documents(n=12, rows_per_doc=5)
        assert len(set(docs.timestamps.tolist())) == 12
        assert "2022:08:10" in docs.timestamps.tolist()
        assert all(len(t) == 5 for t in docs.truth)

    def test_document_images_white_background(self):
        docs = make_documents(n=2, rows_per_doc=3)
        assert docs.images.max() <= 1.0
        assert docs.images.mean() > 0.8       # mostly page, some ink
