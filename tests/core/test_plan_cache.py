"""Query-plan cache: hits, config/device keying, invalidation, batching."""

import numpy as np
import pytest

from repro.core.session import Session


@pytest.fixture
def loaded_session():
    session = Session()
    session.sql.register_dict(
        {"k": np.arange(50, dtype=np.int64) % 5,
         "v": np.arange(50, dtype=np.float32)}, "t")
    return session


SQL = "SELECT k, SUM(v) FROM t WHERE v > 3 GROUP BY k ORDER BY k"


class TestPlanCacheHits:
    def test_repeat_compile_returns_cached_plan(self, loaded_session):
        q1 = loaded_session.sql.query(SQL)
        q2 = loaded_session.sql.query(SQL)
        assert q1 is q2
        assert loaded_session.plan_cache.stats["hits"] == 1
        assert loaded_session.plan_cache.stats["misses"] == 1

    def test_cached_plan_still_runs_correctly(self, loaded_session):
        first = loaded_session.sql.query(SQL).run(toPandas=True)
        again = loaded_session.sql.query(SQL).run(toPandas=True)
        assert first.equals(again)

    def test_different_statement_misses(self, loaded_session):
        loaded_session.sql.query(SQL)
        loaded_session.sql.query("SELECT k FROM t")
        assert loaded_session.plan_cache.stats["hits"] == 0

    def test_different_config_misses(self, loaded_session):
        q1 = loaded_session.sql.query(SQL)
        q2 = loaded_session.sql.query(SQL, extra_config={"groupby_impl": "hash"})
        assert q1 is not q2

    def test_different_device_misses(self, loaded_session):
        q1 = loaded_session.sql.query(SQL, device="cpu")
        q2 = loaded_session.sql.query(SQL, device="cuda")
        assert q1 is not q2
        assert loaded_session.plan_cache.stats["hits"] == 0

    def test_spark_namespace_shares_cache(self, loaded_session):
        q1 = loaded_session.sql.query(SQL)
        q2 = loaded_session.spark.query(SQL)
        assert q1 is q2


class TestPlanCacheInvalidation:
    def test_register_invalidates(self, loaded_session):
        q1 = loaded_session.sql.query(SQL)
        loaded_session.sql.register_dict(
            {"k": np.zeros(3, dtype=np.int64),
             "v": np.ones(3, dtype=np.float32)}, "t")
        q2 = loaded_session.sql.query(SQL)
        assert q1 is not q2
        assert q2.run(toPandas=True)["SUM(v)"].tolist() == []  # v > 3 empty

    def test_drop_invalidates(self, loaded_session):
        loaded_session.sql.register_dict({"x": [1.0]}, "other")
        q1 = loaded_session.sql.query(SQL)
        loaded_session.sql.drop("other")
        assert loaded_session.sql.query(SQL) is not q1

    def test_udf_registration_invalidates(self, loaded_session):
        q1 = loaded_session.sql.query(SQL)

        @loaded_session.udf("float", name="twice")
        def twice(x):
            return x * 2.0

        assert loaded_session.sql.query(SQL) is not q1

    def test_udf_replacement_recompiles_with_new_body(self, loaded_session):
        @loaded_session.udf("float", name="boost")
        def boost(x):
            return x + 1.0

        sql = "SELECT boost(v) AS y FROM t WHERE k = 0 ORDER BY y"
        first = loaded_session.sql.query(sql).run(toPandas=True)

        @loaded_session.udf("float", name="boost")
        def boost2(x):
            return x + 100.0

        second = loaded_session.sql.query(sql).run(toPandas=True)
        assert second["y"].tolist() == [v + 99.0 for v in first["y"].tolist()]

    def test_reset_clears_cache(self, loaded_session):
        loaded_session.sql.query(SQL)
        loaded_session.reset()
        assert len(loaded_session.plan_cache) == 0


class TestPlanCachePolicy:
    def test_opt_out_config(self, loaded_session):
        q1 = loaded_session.sql.query(SQL, extra_config={"plan_cache": False})
        q2 = loaded_session.sql.query(SQL, extra_config={"plan_cache": False})
        assert q1 is not q2
        assert len(loaded_session.plan_cache) == 0

    def test_trainable_queries_never_cached(self, loaded_session):
        config = {"trainable": True}
        q1 = loaded_session.sql.query("SELECT SUM(v) FROM t", extra_config=config)
        q2 = loaded_session.sql.query("SELECT SUM(v) FROM t", extra_config=config)
        assert q1 is not q2

    def test_lru_eviction(self):
        session = Session(plan_cache_size=2)
        session.sql.register_dict({"x": [1.0, 2.0]}, "t")
        session.sql.query("SELECT x FROM t")
        session.sql.query("SELECT x + 1 FROM t")
        session.sql.query("SELECT x + 2 FROM t")      # evicts the first
        assert len(session.plan_cache) == 2
        session.sql.query("SELECT x FROM t")          # recompiled: a miss
        assert session.plan_cache.stats["hits"] == 0


class TestBatchExecution:
    def test_execute_many_results_match_individual_runs(self, loaded_session):
        statements = [
            "SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k",
            "SELECT v FROM t WHERE v > 40 ORDER BY v",
            "SELECT COUNT(*) FROM t",
        ]
        batch = loaded_session.execute_many(statements, toPandas=True)
        for statement, result in zip(statements, batch):
            alone = loaded_session.sql.query(statement).run(toPandas=True)
            assert result.equals(alone)

    def test_execute_many_shares_scans(self, loaded_session, monkeypatch):
        from repro.storage.column import Column
        transfers = []
        original = Column.to

        def counting_to(self, device):
            transfers.append(self.name)
            return original(self, device)

        monkeypatch.setattr(Column, "to", counting_to)
        loaded_session.execute_many(
            ["SELECT SUM(v) FROM t", "SELECT AVG(v) FROM t",
             "SELECT k, SUM(v) FROM t GROUP BY k"],
            device="cuda")
        # Three statements referencing v three times and k once, but each
        # column crosses to the device exactly once for the whole batch.
        assert sorted(transfers) == ["k", "v"]

    def test_run_many_on_compiled_queries(self, loaded_session):
        q1 = loaded_session.sql.query("SELECT COUNT(*) FROM t")
        q2 = loaded_session.sql.query("SELECT SUM(v) FROM t")
        r1, r2 = q1.run_many([q2])
        assert r1.scalar() == 50
        assert r2.scalar() == pytest.approx(np.arange(50, dtype=np.float32).sum())

    def test_shared_scan_memo_does_not_leak(self, loaded_session):
        from repro.core.operators import scan as scan_mod
        loaded_session.execute_many(["SELECT COUNT(*) FROM t"])
        assert scan_mod._SCAN_MEMO.get() is None

    def test_scans_resolve_fresh_outside_batches(self, loaded_session):
        q = loaded_session.sql.query("SELECT COUNT(*) FROM t")
        assert q.run().scalar() == 50
        loaded_session.sql.register_dict(
            {"k": np.zeros(3, dtype=np.int64),
             "v": np.ones(3, dtype=np.float32)}, "t")
        assert q.run().scalar() == 3   # runtime catalog resolution preserved
