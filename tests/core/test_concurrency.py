"""Concurrent query serving: thread-safety of the engine core, the
scheduler/inference-batcher subsystem, and a randomized stress test over
query/DDL/UDF-re-registration interleavings (the PR 4 tentpole)."""

import os
import threading
import time

import numpy as np
import pytest

from repro.core import tensor_cache as tc
from repro.core.scheduler import InferenceBatcher, QueryScheduler
from repro.core.session import Session
from repro.storage.column import Column
from repro.tcr import nn
from repro.tcr.tensor import Tensor


def _scaled(value: int, minimum: int = 1) -> int:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return max(int(round(value * scale)), minimum)


def _run_threads(n, target):
    """Start n threads on target(i), join them, re-raise the first error."""
    errors = []

    def wrapped(i):
        try:
            target(i)
        except BaseException as exc:   # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "worker thread deadlocked"
    if errors:
        raise errors[0]
    return errors


def _numeric_session(rows: int = 64) -> Session:
    session = Session()
    rng = np.random.default_rng(7)
    session.sql.register_dict(
        {"k": np.arange(rows, dtype=np.int64) % 8,
         "v": rng.normal(size=rows).astype(np.float32),
         "vec": rng.normal(size=(rows, 8)).astype(np.float32)},
        "t",
    )
    scale = nn.Linear(1, 1)

    @session.udf("float", name="affine", modules=[scale])
    def affine(v: Tensor) -> Tensor:
        return scale(v.reshape(-1, 1)).reshape(-1)

    return session


QUERIES = [
    "SELECT COUNT(*) FROM t WHERE v > 0",
    "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k",
    "SELECT k FROM t WHERE affine(v) > 0 ORDER BY k LIMIT 5",
    "SELECT SUM(v) FROM t",
    "SELECT k, v FROM t WHERE k = 3 ORDER BY v LIMIT 4",
]


def _snapshot(result):
    return {name: result.column(name).tolist() for name in result.column_names}


class TestParallelQueries:
    def test_parallel_queries_match_serial(self):
        """8 threads hammering one session produce the serial results."""
        session = _numeric_session()
        expected = [_snapshot(session.sql.query(q).run()) for q in QUERIES]
        outcomes = [[None] * len(QUERIES) for _ in range(8)]

        def worker(i):
            order = list(range(len(QUERIES)))
            if i % 2:
                order.reverse()
            for j in order:
                outcomes[i][j] = _snapshot(session.sql.query(QUERIES[j]).run())

        _run_threads(8, worker)
        for per_thread in outcomes:
            assert per_thread == expected

    def test_parallel_execute_many_shared_scans_isolated(self):
        """Concurrent execute_many batches keep private scan memos."""
        session = _numeric_session()
        expected = session.sql.query("SELECT SUM(v) FROM t").run().scalar()
        results = [None] * 6

        def worker(i):
            batch = session.execute_many(
                ["SELECT SUM(v) FROM t", "SELECT COUNT(*) FROM t"])
            results[i] = (batch[0].scalar(), batch[1].scalar())

        _run_threads(6, worker)
        assert all(r == (expected, 64) for r in results)

    def test_scan_memo_is_context_local(self):
        from repro.core.operators.scan import _SCAN_MEMO, shared_scans
        seen = {}
        with shared_scans():
            assert _SCAN_MEMO.get() is not None

            def peek(_):
                seen["inner"] = _SCAN_MEMO.get()

            _run_threads(1, peek)
        assert seen["inner"] is None      # other threads never see our memo
        assert _SCAN_MEMO.get() is None   # and ours is restored


class TestIndexBuildOnce:
    def test_concurrent_lazy_build_embeds_once(self):
        """N concurrent probes of an unbuilt index embed the corpus once."""
        session = _numeric_session()
        calls = []

        def embedder(tensor):
            calls.append(1)
            time.sleep(0.01)     # widen the race window
            return np.asarray(tensor.data, dtype=np.float32)

        session.create_vector_index("ivf", "t", "vec", cells=4, nprobe=4,
                                    embedder=embedder)
        entry = session.indexes.lookup("ivf")
        query = np.zeros(8, dtype=np.float32)

        def worker(_):
            ids, _scores = session.indexes.search("ivf", query, k=3)
            assert len(ids) == 3

        _run_threads(8, worker)
        assert sum(calls) == 1
        assert entry.build_count == 1

    def test_stale_rebuild_still_builds_once(self):
        session = _numeric_session()
        calls = []
        session.create_vector_index(
            "ivf", "t", "vec", cells=4,
            embedder=lambda t: (calls.append(1)
                                or np.asarray(t.data, dtype=np.float32)))
        session.indexes.search("ivf", np.zeros(8, dtype=np.float32), k=2)
        assert sum(calls) == 1
        # Re-register the table: the entry is stale; concurrent probes must
        # agree on a single rebuild.
        rng = np.random.default_rng(3)
        session.sql.register_dict(
            {"k": np.arange(32, dtype=np.int64) % 8,
             "v": rng.normal(size=32).astype(np.float32),
             "vec": rng.normal(size=(32, 8)).astype(np.float32)}, "t")
        _run_threads(6, lambda _: session.indexes.search(
            "ivf", np.zeros(8, dtype=np.float32), k=2))
        assert sum(calls) == 2
        assert session.indexes.lookup("ivf").build_count == 2


class TestCacheConcurrency:
    def test_tensor_cache_eviction_budget_invariant(self):
        """Concurrent inserts never leave the cache over its byte budget."""
        from repro.core.tensor_cache import TensorCache
        cache = TensorCache(max_bytes=16 * 1024)
        violations = []

        def worker(i):
            rng = np.random.default_rng(i)
            for j in range(200):
                col = Column.from_values(
                    "c", rng.normal(size=64).astype(np.float32))
                cache.put((i, j), [col], col.tensor.data.nbytes)
                if cache.current_bytes > cache.max_bytes:
                    violations.append(cache.current_bytes)

        _run_threads(8, worker)
        assert not violations
        stats = cache.stats
        assert stats["bytes"] <= stats["max_bytes"]
        assert stats["inserts"] == 8 * 200

    def test_plan_cache_stats_do_not_tear(self):
        """hits + misses always equals the number of lookups."""
        session = _numeric_session()
        lookups_per_thread = 40

        def worker(i):
            for j in range(lookups_per_thread):
                session.sql.query(QUERIES[(i + j) % len(QUERIES)]).run()

        _run_threads(8, worker)
        stats = session.plan_cache.stats
        assert stats["hits"] + stats["misses"] == 8 * lookups_per_thread

    def test_tensor_cache_stats_consistent_under_load(self):
        session = _numeric_session()

        def worker(i):
            for _ in range(10):
                session.sql.query(
                    "SELECT k FROM t WHERE affine(v) > 0 ORDER BY k LIMIT 5"
                ).run()

        _run_threads(6, worker)
        stats = session.tensor_cache.stats
        lookups = stats["hits"] + stats["misses"] + stats["gather_hits"]
        assert lookups >= 60      # every run consulted the cache exactly once
        assert stats["bytes"] <= stats["max_bytes"]


class TestScheduler:
    def test_submit_returns_future_with_query_result(self):
        session = _numeric_session()
        future = session.submit("SELECT COUNT(*) FROM t")
        assert future.result(timeout=30).scalar() == 64

    def test_serve_matches_serial_in_order(self):
        session = _numeric_session()
        expected = [_snapshot(session.sql.query(q).run()) for q in QUERIES]
        served = session.serve(QUERIES * 3, workers=4)
        assert [_snapshot(r) for r in served] == expected * 3

    def test_identical_inflight_statements_coalesce(self):
        session = _numeric_session()
        invocations = []
        barrier = threading.Barrier(4, timeout=30)

        @session.udf("float", name="slowfn", deterministic=False)
        def slowfn(v: Tensor) -> Tensor:
            invocations.append(1)
            time.sleep(0.05)
            return v

        scheduler = QueryScheduler(session, workers=4)
        try:
            # Fill all four workers with a barrier statement first so the
            # duplicates below are guaranteed to be in flight together.
            @session.udf("float", name="sync", deterministic=False)
            def sync(v: Tensor) -> Tensor:
                barrier.wait()
                return v

            warm = [scheduler.submit("SELECT sync(v) FROM t WHERE k = %d" % i)
                    for i in range(4)]
            dupes = [scheduler.submit("SELECT SUM(slowfn(v)) FROM t")
                     for _ in range(8)]
            for f in warm + dupes:
                f.result(timeout=30)
            values = {f.result().scalar() for f in dupes}
            assert len(values) == 1
            assert scheduler.stats["coalesced"] >= 1
            # deterministic=False disables the tensor cache for slowfn, so
            # every non-coalesced duplicate re-invokes it (64 rows on cpu =
            # 64 micro-batched invocations each).
            assert len(invocations) == \
                64 * (scheduler.stats["executed"] - 4)
        finally:
            scheduler.shutdown()

    def test_ddl_never_coalesces_and_registry_change_disqualifies(self):
        session = _numeric_session()
        scheduler = QueryScheduler(session, workers=2)
        try:
            f1 = scheduler.submit("SELECT COUNT(*) FROM t")
            f1.result(timeout=30)
            stamp_before = scheduler.stats["executed"]
            # A DDL statement between two identical submissions bumps the
            # version stamp, so the second must re-execute, not join.
            f2 = scheduler.submit("SELECT SUM(v) FROM t")
            f2.result(timeout=30)
            session.sql.query(
                "CREATE VECTOR INDEX cidx ON t(vec) WITH (cells=2)").run()
            f3 = scheduler.submit("SELECT SUM(v) FROM t")
            assert f3.result(timeout=30).scalar() == f2.result().scalar()
            assert scheduler.stats["executed"] == stamp_before + 2
        finally:
            scheduler.shutdown()

    def test_errors_propagate_through_futures(self):
        session = _numeric_session()
        future = session.submit("SELECT nope FROM t")
        with pytest.raises(Exception):
            future.result(timeout=30)
        # The pool survives the failure.
        assert session.submit("SELECT COUNT(*) FROM t").result(
            timeout=30).scalar() == 64


class _CountingEncoder(nn.Module):
    """Minimal encode_image-bearing module for batcher tests. The sleep
    widens the in-flight window so concurrent requests reliably overlap."""

    def __init__(self, delay: float = 0.03):
        super().__init__()
        self.proj = nn.Linear(4, 2)
        self.delay = delay
        self.calls = []

    def encode_image(self, images):
        self.calls.append(int(images.shape[0]))
        time.sleep(self.delay)
        return self.proj(images)


class TestInferenceBatcher:
    MODEL_TOKEN = 77

    def _request(self, batcher, model, images, base_token, rows_fp, results,
                 slot):
        tag = tc.CacheTag(base_token, rows_fp,
                          np.arange(2) if rows_fp is not None else None)
        orig = model.encode_image
        out = batcher.encode(model, orig, images, tag,
                             self.MODEL_TOKEN, None, None)
        results[slot] = np.asarray(out.data)

    def test_identical_requests_share_one_forward(self):
        model = _CountingEncoder()
        batcher = InferenceBatcher(window=0.05)
        images = Tensor(np.random.default_rng(0).normal(
            size=(2, 4)).astype(np.float32))
        results = [None] * 4
        barrier = threading.Barrier(4, timeout=30)

        def worker(i):
            barrier.wait()
            self._request(batcher, model, images, 42, ("fp", 0, 2),
                          results, i)
            batcher.statement_finished()

        _run_threads(4, worker)
        assert model.calls == [2]               # one forward pass total
        for r in results[1:]:
            np.testing.assert_array_equal(results[0], r)
        stats = batcher.stats
        assert stats["requests"] == 4 and stats["joins"] == 3
        assert stats["forwards"] == 1

    def test_staggered_identical_requests_join_the_running_forward(self):
        """A duplicate arriving while the forward is computing still joins."""
        model = _CountingEncoder(delay=0.1)
        batcher = InferenceBatcher(window=0.01)
        images = Tensor(np.zeros((2, 4), dtype=np.float32))
        results = [None] * 2

        def worker(i):
            time.sleep(0.03 * i)    # second request lands mid-forward
            self._request(batcher, model, images, 9, None, results, i)
            batcher.statement_finished()

        _run_threads(2, worker)
        assert model.calls == [2]
        np.testing.assert_array_equal(results[0], results[1])

    def test_fused_batches_match_unfused(self):
        model = _CountingEncoder()
        batcher = InferenceBatcher(window=0.05, fuse=True)
        rng = np.random.default_rng(1)
        chunks = [Tensor(rng.normal(size=(2, 4)).astype(np.float32))
                  for _ in range(3)]
        results = [None] * 3
        barrier = threading.Barrier(3, timeout=30)

        def worker(i):
            barrier.wait()
            self._request(batcher, model, chunks[i], 100 + i, None,
                          results, i)
            batcher.statement_finished()

        _run_threads(3, worker)
        assert sum(model.calls) == 6            # all rows encoded...
        assert batcher.stats["fused_forwards"] >= 1   # ...in fused forwards
        for i, chunk in enumerate(chunks):
            expected = np.asarray(model.proj(chunk).data)
            np.testing.assert_allclose(results[i], expected, rtol=1e-5)

    def test_tags_are_refcounted_across_sharers(self):
        """One query's cleanup must not strip another query's in-flight tag
        on a shared base-column tensor."""
        tensor = Tensor(np.zeros(3, dtype=np.float32))
        tag = tc.CacheTag(5, None, None)
        tc.tag_tensor(tensor, tag)      # query A
        tc.tag_tensor(tensor, tag)      # query B (same shared tensor)
        tc.untag_tensor(tensor)         # A finishes first
        assert getattr(tensor, "_cache_tag", None) is tag   # B keeps its tag
        tc.untag_tensor(tensor)         # B finishes
        assert getattr(tensor, "_cache_tag", None) is None
        tc.untag_tensor(tensor)         # extra release is harmless

    def test_lone_query_pays_no_window_latency(self):
        model = _CountingEncoder()
        batcher = InferenceBatcher(window=5.0)   # would be visible if waited
        images = Tensor(np.zeros((1, 4), dtype=np.float32))
        start = time.perf_counter()
        self._request(batcher, model, images, 7, None, [None], 0)
        assert time.perf_counter() - start < 1.0
        batcher.statement_finished()


class TestStress:
    """Randomized concurrent query / DDL / UDF-re-registration stress.

    Every mutation is semantically idempotent (tables re-register the same
    content, UDFs re-register the same body), so every query interleaving
    has one correct answer; the test checks each thread observes it while
    registries churn underneath.
    """

    def test_randomized_interleavings_survive(self):
        session = _numeric_session()
        rng0 = np.random.default_rng(0)
        table_data = {
            "k": np.arange(64, dtype=np.int64) % 8,
            "v": np.random.default_rng(7).normal(size=64).astype(np.float32),
            "vec": np.random.default_rng(7).normal(
                size=(64, 8)).astype(np.float32),
        }
        # Recreate 't' deterministically so re-registration keeps content.
        session.sql.register_dict(dict(table_data), "t")
        scale = session.functions.lookup("affine").modules[0]
        expected = [_snapshot(session.sql.query(q).run()) for q in QUERIES]
        iterations = _scaled(25, minimum=5)
        probe = rng0.normal(size=8).astype(np.float32)

        def reregister_udf():
            @session.udf("float", name="affine", modules=[scale])
            def affine(v: Tensor) -> Tensor:
                return scale(v.reshape(-1, 1)).reshape(-1)

        def worker(i):
            rng = np.random.default_rng(1000 + i)
            for _ in range(iterations):
                op = int(rng.integers(0, 12))
                if op < 5:
                    j = int(rng.integers(0, len(QUERIES)))
                    got = _snapshot(session.sql.query(QUERIES[j]).run())
                    assert got == expected[j]
                elif op >= 10:
                    # Sharded statements interleave with whole-query work on
                    # the session shard pool without deadlock, bit-identical.
                    j = int(rng.integers(0, len(QUERIES)))
                    got = _snapshot(session.sql.query(QUERIES[j], extra_config={
                        "shards": int(rng.integers(2, 5)),
                        "parallel_min_rows": 2}).run())
                    assert got == expected[j]
                elif op == 5:
                    session.sql.register_dict(dict(table_data), "t")
                elif op == 6:
                    reregister_udf()
                elif op == 7:
                    name = f"sidx_{i}"
                    try:
                        session.create_vector_index(
                            name, "t", "vec", cells=4, nprobe=4,
                            embedder=lambda t: np.asarray(
                                t.data, dtype=np.float32))
                        ids, _ = session.indexes.search(name, probe, k=3)
                        assert len(ids) == 3
                    finally:
                        session.drop_index(name, if_exists=True)
                elif op == 8:
                    batch = session.execute_many(
                        ["SELECT COUNT(*) FROM t", "SELECT SUM(v) FROM t"])
                    assert batch[0].scalar() == 64
                else:
                    future = session.submit(QUERIES[0])
                    assert _snapshot(future.result(timeout=60)) == expected[0]

        _run_threads(6, worker)
        # The engine is still coherent afterwards.
        for q, want in zip(QUERIES, expected):
            assert _snapshot(session.sql.query(q).run()) == want
        stats = session.plan_cache.stats
        assert stats["hits"] + stats["misses"] >= iterations
        session.reset()

    def test_stress_with_concurrent_serving(self):
        """serve() under concurrent direct queries from other threads."""
        session = _numeric_session()
        expected = [_snapshot(session.sql.query(q).run()) for q in QUERIES]
        rounds = _scaled(6, minimum=2)

        def direct(i):
            for j in range(rounds * 3):
                q = QUERIES[(i + j) % len(QUERIES)]
                assert _snapshot(session.sql.query(q).run()) == \
                    expected[QUERIES.index(q)]

        def serving(worker_idx):
            for round_idx in range(rounds):
                extra = None
                if (worker_idx + round_idx) % 2:
                    # Alternate rounds serve sharded statements: scheduler
                    # workers submit shard batches to the session pool while
                    # other scheduler workers run whole statements.
                    extra = {"shards": 3, "parallel_min_rows": 2}
                got = session.serve(QUERIES, workers=3, extra_config=extra)
                assert [_snapshot(r) for r in got] == expected

        def drive(i):
            (serving if i < 2 else direct)(i)

        _run_threads(4, drive)
