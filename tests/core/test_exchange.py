"""Exchange operators: hash/range partitioning, partitioned joins,
repartitioned grouped aggregates, and the plan-time soft decline."""

import numpy as np
import pytest

from repro.core.operators.exchange import (
    HashPartitioner,
    RangePartitioner,
    factorize_key_rows,
    hash_partition_ids,
    partition_indices,
)
from repro.core.session import Session


def _assert_bitwise(result_a, result_b, context=""):
    assert result_a.column_names == result_b.column_names, context
    for name in result_a.column_names:
        a = np.asarray(result_a.column(name))
        b = np.asarray(result_b.column(name))
        assert a.dtype == b.dtype, (context, name, a.dtype, b.dtype)
        assert a.shape == b.shape, (context, name, a.shape, b.shape)
        if a.dtype.kind == "f":
            assert np.array_equal(a, b, equal_nan=True), (context, name)
        else:
            assert np.array_equal(a, b), (context, name)


SERIAL = {"shards": 1}
EXCHANGE = {"shards": 4, "parallel_min_rows": 2}
NO_EXCHANGE = {"shards": 4, "parallel_min_rows": 2, "exchange": False}


def _session(n=600, seed=7, dim_rows=23):
    rng = np.random.default_rng(seed)
    session = Session()
    session.sql.register_dict({
        "id": np.arange(n, dtype=np.int64),
        "b": rng.integers(0, dim_rows + 8, n).astype(np.int64),
        "k": rng.integers(0, 5, n).astype(np.int64),
        "f": np.round(rng.normal(size=n), 3),
        "g": np.where(rng.random(n) < 0.25, np.nan, rng.normal(size=n)),
        "s": np.array([["alpha", "beta", "gamma", "delta"][i]
                       for i in rng.integers(0, 4, n)], dtype=object),
    }, "t")
    session.sql.register_dict({
        "b": np.arange(dim_rows, dtype=np.int64),
        "k": (np.arange(dim_rows, dtype=np.int64) % 5),
        "w": rng.integers(0, 50, dim_rows).astype(np.int64),
        "label": np.array([["x", "y", "z"][i % 3] for i in range(dim_rows)],
                          dtype=object),
    }, "dim")
    return session


# ----------------------------------------------------------------------
# Partition-function units
# ----------------------------------------------------------------------
class TestPartitionFunctions:
    def test_hash_ids_are_stable_and_complete(self):
        codes = np.array([3, 1, 3, 0, 2, 1, 3], dtype=np.int64)
        ids_a = hash_partition_ids(codes, 4)
        ids_b = hash_partition_ids(codes, 4)
        assert np.array_equal(ids_a, ids_b)
        assert ids_a.min() >= 0 and ids_a.max() < 4
        # Equal codes route identically.
        assert ids_a[0] == ids_a[2] == ids_a[6]
        assert ids_a[1] == ids_a[5]

    def test_partition_indices_preserve_row_order(self):
        ids = np.array([1, 0, 1, 1, 0, 2], dtype=np.int64)
        parts = partition_indices(ids, 3)
        assert [p.tolist() for p in parts] == [[1, 4], [0, 2, 3], [5]]
        # Every row appears exactly once.
        assert sorted(np.concatenate(parts).tolist()) == list(range(6))

    def test_hash_partitioner_covers_all_rows(self):
        codes = np.arange(1000, dtype=np.int64) % 137
        parts = HashPartitioner(8).partition(codes)
        assert sorted(np.concatenate(parts).tolist()) == list(range(1000))
        for idx in parts:
            assert np.all(np.diff(idx) > 0)   # ascending within partition

    def test_factorize_collapses_nan_and_signed_zero(self):
        values = np.array([np.nan, 1.0, np.nan, -0.0, 0.0, 1.0])
        codes = factorize_key_rows([values])
        assert codes[0] == codes[2]           # all NaNs share one code
        assert codes[3] == codes[4]           # -0.0 == 0.0
        assert codes[1] == codes[5]

    def test_factorize_multi_key(self):
        a = np.array([1, 1, 2, 1], dtype=np.int64)
        b = np.array([5.0, np.nan, 5.0, 5.0])
        codes = factorize_key_rows([a, b])
        assert codes[0] == codes[3]
        assert codes[0] != codes[1]
        assert codes[0] != codes[2]

    def test_range_partitioner_orders_rows(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=500)
        part = RangePartitioner.from_values(values, 4)
        parts = part.partition(values)
        assert sorted(np.concatenate(parts).tolist()) == list(range(500))
        # Range contract: every value in partition i <= every value in i+1.
        maxes = [values[idx].max() for idx in parts if len(idx)]
        mins = [values[idx].min() for idx in parts if len(idx)]
        for hi, lo in zip(maxes[:-1], mins[1:]):
            assert hi <= lo

    def test_range_partitioner_sends_nans_last(self):
        values = np.array([1.0, np.nan, -2.0, np.nan, 5.0])
        part = RangePartitioner.from_values(values, 3)
        parts = part.partition(values)
        last = parts[-1]
        assert 1 in last and 3 in last


# ----------------------------------------------------------------------
# Partitioned joins
# ----------------------------------------------------------------------
class TestPartitionedJoin:
    @pytest.mark.parametrize("kind", ["JOIN", "LEFT JOIN"])
    def test_join_bit_identical(self, kind):
        session = _session()
        sql = (f"SELECT x.id, x.f, d.w, d.label FROM t x {kind} dim d "
               f"ON x.b = d.b")
        serial = session.sql.query(sql, extra_config=SERIAL).run()
        exchanged = session.sql.query(sql, extra_config=EXCHANGE).run()
        _assert_bitwise(serial, exchanged, kind)

    def test_multi_key_join_bit_identical(self):
        session = _session()
        sql = ("SELECT x.id, d.w FROM t x JOIN dim d "
               "ON x.b = d.b AND x.k = d.k")
        serial = session.sql.query(sql, extra_config=SERIAL).run()
        exchanged = session.sql.query(sql, extra_config=EXCHANGE).run()
        _assert_bitwise(serial, exchanged)

    def test_join_with_residual_and_filter(self):
        session = _session()
        sql = ("SELECT x.id, d.w FROM t x LEFT JOIN dim d "
               "ON x.b = d.b AND d.w > 10 WHERE x.k < 4")
        serial = session.sql.query(sql, extra_config=SERIAL).run()
        exchanged = session.sql.query(sql, extra_config=EXCHANGE).run()
        _assert_bitwise(serial, exchanged)

    def test_small_input_falls_back_serially(self):
        session = _session(n=8)
        sql = "SELECT x.id, d.w FROM t x JOIN dim d ON x.b = d.b"
        big_min = {"shards": 4, "parallel_min_rows": 100000}
        serial = session.sql.query(sql, extra_config=SERIAL).run()
        fallback = session.sql.query(sql, extra_config=big_min).run()
        _assert_bitwise(serial, fallback)

    def test_exchange_off_keeps_serial_join_plan(self):
        session = _session()
        sql = "EXPLAIN SELECT x.id, d.w FROM t x JOIN dim d ON x.b = d.b"
        plan_on = "\n".join(
            str(v) for v in np.asarray(
                session.sql.query(sql, extra_config=EXCHANGE).run()
                .column("plan")))
        plan_off = "\n".join(
            str(v) for v in np.asarray(
                session.sql.query(sql, extra_config=NO_EXCHANGE).run()
                .column("plan")))
        assert "PartitionedJoin" in plan_on
        assert "PartitionedJoin" not in plan_off

    def test_exchange_metrics_recorded(self):
        session = _session()
        sql = "SELECT x.id, d.w FROM t x JOIN dim d ON x.b = d.b"
        session.sql.query(sql, extra_config=EXCHANGE).run()
        snapshot = session.metrics.snapshot()
        assert snapshot["exchange.partitions"] >= 4
        assert snapshot["exchange.rows_moved"] > 0
        assert snapshot["exchange.skew"] >= 1.0

    def test_plan_cache_distinguishes_exchange_knob(self):
        session = _session()
        sql = "SELECT x.id, d.w FROM t x JOIN dim d ON x.b = d.b"
        session.sql.query(sql, extra_config=EXCHANGE).run()
        session.sql.query(sql, extra_config=NO_EXCHANGE).run()
        with_x = session.compile_query(sql, extra_config=EXCHANGE)
        without_x = session.compile_query(sql, extra_config=NO_EXCHANGE)
        assert with_x is not without_x


# ----------------------------------------------------------------------
# Repartitioned GROUP BY (non-mergeable aggregates)
# ----------------------------------------------------------------------
class TestExchangeGroupedAggregate:
    @pytest.mark.parametrize("sql", [
        "SELECT s, SUM(f) AS sf FROM t GROUP BY s",
        "SELECT b, AVG(g) AS ag FROM t GROUP BY b",
        "SELECT s, b, COUNT(DISTINCT k) AS cd FROM t GROUP BY s, b",
        "SELECT g, COUNT(*) AS c, SUM(f) AS sf FROM t GROUP BY g",
        "SELECT k, SUM(f * 2.0) AS sf FROM t WHERE b < 20 GROUP BY k",
    ])
    def test_grouped_bit_identical(self, sql):
        session = _session()
        serial = session.sql.query(sql, extra_config=SERIAL).run()
        exchanged = session.sql.query(sql, extra_config=EXCHANGE).run()
        _assert_bitwise(serial, exchanged, sql)

    def test_aggregate_above_join_bit_identical(self):
        session = _session()
        sql = ("SELECT d.label, SUM(x.f) AS sf, AVG(x.g) AS ag "
               "FROM t x JOIN dim d ON x.b = d.b GROUP BY d.label")
        serial = session.sql.query(sql, extra_config=SERIAL).run()
        exchanged = session.sql.query(sql, extra_config=EXCHANGE).run()
        _assert_bitwise(serial, exchanged)

    def test_exchange_plan_annotated(self):
        session = _session()
        plan = session.sql.query(
            "EXPLAIN SELECT s, SUM(f) AS sf FROM t GROUP BY s",
            extra_config=EXCHANGE).run()
        text = "\n".join(str(v) for v in np.asarray(plan.column("plan")))
        assert "ExchangeGroupedAggregate(partitions=4)" in text

    def test_mergeable_groups_keep_sharded_partials(self):
        # Exact-mergeable grouped aggregates over a shardable chain still
        # lower to the cheaper grouped-partial driver, not an exchange.
        session = _session()
        plan = session.sql.query(
            "EXPLAIN SELECT b, COUNT(*) AS c FROM t GROUP BY b",
            extra_config=EXCHANGE).run()
        text = "\n".join(str(v) for v in np.asarray(plan.column("plan")))
        assert "ShardedGroupedAggregate" in text
        assert "ExchangeGroupedAggregate" not in text


# ----------------------------------------------------------------------
# Satellite: soft pipelines decline sharding/exchange at plan time
# ----------------------------------------------------------------------
def _soft_session(rows=64):
    from repro.storage.encodings import PEEncoding
    from repro.tcr import nn
    from repro.tcr.tensor import Tensor

    session = Session()
    model = nn.Linear(2, 2)

    @session.udf("Label float", name="classify", modules=[model])
    def classify(x):
        return PEEncoding.encode(model(x), domain=[0, 1])

    rng = np.random.default_rng(0)
    features = rng.normal(size=(rows, 2)).astype(np.float32)
    session.sql.register_tensor(Tensor(features), "bag")
    return session


class TestSoftDecline:
    SQL = "SELECT Label, COUNT(*) AS c FROM classify(bag) GROUP BY Label"

    def test_soft_aggregate_under_shards_runs_and_matches_serial(self):
        # Regression: a soft grouped aggregate compiled with shards > 1 must
        # not reach the stitch barrier (which raises on soft row weights);
        # the rewrites decline at plan time and execution stays serial.
        session = _soft_session()
        soft_serial = {"shards": 1, "groupby_impl": "soft"}
        soft_sharded = {"shards": 4, "parallel_min_rows": 2,
                        "groupby_impl": "soft"}
        serial = session.sql.query(self.SQL, extra_config=soft_serial).run()
        sharded = session.sql.query(self.SQL, extra_config=soft_sharded).run()
        _assert_bitwise(serial, sharded)

    def test_soft_plan_has_no_partition_drivers(self):
        session = _soft_session()
        plan = session.sql.query(
            "EXPLAIN " + self.SQL,
            extra_config={"shards": 4, "parallel_min_rows": 2,
                          "groupby_impl": "soft"}).run()
        text = "\n".join(str(v) for v in np.asarray(plan.column("plan")))
        assert "SoftAggregate" in text
        assert "Sharded" not in text
        assert "Exchange" not in text
