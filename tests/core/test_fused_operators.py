"""Fused Filter/Project execution: plan shape and fused/unfused equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import Compiler
from repro.core.config import QueryConfig
from repro.core.session import Session
from repro.sql import bound as b
from repro.sql import logical
from repro.storage import types as dt

UNFUSED = {"fuse_operators": False}


@pytest.fixture
def session():
    rng = np.random.default_rng(0)
    session = Session()
    session.sql.register_dict({
        "k": rng.integers(0, 20, size=500),
        "a": rng.normal(size=500).astype(np.float32),
        "b": rng.normal(size=500).astype(np.float32),
        "s": rng.choice(["red", "green", "blue"], size=500),
    }, "t")
    return session


# Queries exercising the fused paths, including the shapes used by
# bench_ablation_operators (group-by over a filtered scan, top-k).
EQUIVALENCE_QUERIES = [
    "SELECT a, b FROM t WHERE a > 0",
    "SELECT a + b AS s2, a * 2 AS d FROM t WHERE a > 0 AND b < 1 AND a < b",
    "SELECT k FROM t WHERE a > 0 AND k < 10 AND s = 'red'",
    "SELECT k, COUNT(*), SUM(a) FROM t WHERE a > 0 AND b < 0.5 GROUP BY k ORDER BY k",
    "SELECT a FROM t WHERE s LIKE 'r%' ORDER BY a DESC LIMIT 5",
    "SELECT ABS(a) AS m FROM t WHERE a BETWEEN -1 AND 1 AND k IN (1, 2, 3)",
    "SELECT a FROM t WHERE a > 100",                     # empty result
    "SELECT k, a FROM t WHERE k = 3 ORDER BY a LIMIT 7",
]


class TestFusedEquivalence:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_fused_matches_unfused(self, session, sql):
        fused = session.sql.query(sql).run(toPandas=True)
        unfused = session.sql.query(sql, extra_config=UNFUSED).run(toPandas=True)
        assert fused.equals(unfused, atol=1e-5)

    @given(lo=st.floats(-2, 2), hi=st.floats(-2, 2))
    @settings(max_examples=20, deadline=None)
    def test_fused_range_filters_match(self, lo, hi):
        rng = np.random.default_rng(5)
        session = Session()
        session.sql.register_dict(
            {"x": rng.normal(size=200).astype(np.float32)}, "t")
        sql = f"SELECT x * 2 AS y FROM t WHERE x > {lo} AND x < {hi}"
        fused = session.sql.query(sql).run(toPandas=True)
        unfused = session.sql.query(sql, extra_config=UNFUSED).run(toPandas=True)
        assert fused.equals(unfused, atol=1e-5)


class TestFusedPlanShape:
    def test_filter_project_fuses(self, session):
        plan = session.sql.query(
            "SELECT a + b AS c FROM t WHERE a > 0 AND b < 1").explain()
        assert "FusedFilterProject" in plan
        assert "\nProject" not in plan.split("== Physical operators ==")[1]

    def test_multi_conjunct_filter_fuses_without_project(self, session):
        plan = session.sql.query(
            "SELECT k, COUNT(*) FROM t WHERE a > 0 AND b < 1 GROUP BY k"
        ).explain()
        physical = plan.split("== Physical operators ==")[1]
        assert "FusedFilter" in physical

    def test_single_conjunct_never_uses_fused_filter_exec(self, session):
        # One conjunct fuses with an adjacent Project (FusedFilterProject) but
        # must not pay the FusedFilterExec wrapper on its own.
        plan = session.sql.query(
            "SELECT k, COUNT(*) FROM t WHERE a > 0 GROUP BY k").explain()
        physical = plan.split("== Physical operators ==")[1]
        assert "FusedFilter(" not in physical
        assert "FusedFilterProject" in physical

    def test_fusion_disabled_by_flag(self, session):
        plan = session.sql.query(
            "SELECT a + b AS c FROM t WHERE a > 0 AND b < 1",
            extra_config=UNFUSED).explain()
        physical = plan.split("== Physical operators ==")[1]
        assert "Fused" not in physical
        assert physical.count("Filter") == 2        # conjunct cascade preserved

    def test_trainable_compilation_never_fuses(self, session):
        plan = session.sql.query(
            "SELECT SUM(a) FROM t WHERE a > 0 AND b < 1",
            extra_config={"trainable": True}).explain()
        assert "Fused" not in plan.split("== Physical operators ==")[1]


class TestUdfFilterCascade:
    def test_udf_conjunct_sees_prefiltered_rows(self, session):
        seen_rows = []

        @session.udf("bool", name="probe")
        def probe(x):
            seen_rows.append(x.shape[0])
            return x > 0

        out = session.sql.query(
            "SELECT a FROM t WHERE k < 5 AND probe(a)").run(toPandas=True)
        # The cheap k<5 conjunct must prune rows before the UDF runs: the
        # (micro-batched) probe invocations together see < 500 rows.
        assert 0 < sum(seen_rows) < 500
        unfused = session.sql.query(
            "SELECT a FROM t WHERE k < 5 AND probe(a)",
            extra_config=UNFUSED).run(toPandas=True)
        assert out.equals(unfused, atol=1e-6)


class TestFilterChainOrder:
    def test_inner_guard_filter_runs_before_outer_udf(self):
        """A chained Filter below a UDF-bearing Filter must keep guarding it.

        Lowering flattens Filter chains; the conjuncts must keep *execution*
        order (innermost first) so the UDF never sees rows its guard
        excluded.
        """
        session = Session()
        session.sql.register_dict(
            {"x": np.array([-3.0, -1.0, 0.5, 2.0, 4.0], dtype=np.float32)}, "t")
        seen = []

        @session.udf("bool", name="picky")
        def picky(x):
            assert (x.detach().data > 0).all(), "guard violated"
            seen.append(x.shape[0])
            return x > 1.0

        info = session.functions.lookup("picky")
        schema = [("x", dt.FLOAT)]
        guard = logical.Filter(
            logical.Scan("t", schema),
            b.BBinary(">", b.BColumn(0, "x", dt.FLOAT),
                      b.BLiteral(0.0, dt.FLOAT), dt.BOOL))
        chained = logical.Filter(
            guard, b.BCall(info, [b.BColumn(0, "x", dt.FLOAT)], dt.BOOL))
        for config in (QueryConfig(), QueryConfig({"fuse_operators": False})):
            seen.clear()
            query = Compiler(session.catalog, config, "cpu").compile(
                chained, "<manual>")
            out = query.run(toPandas=True)
            assert out["x"].tolist() == [2.0, 4.0]
            assert sum(seen) == 3                # only the guarded rows


class TestProjectProjectMerge:
    def _nested_project_plan(self):
        schema_in = [("x", dt.FLOAT)]
        scan = logical.Scan("t", schema_in)
        inner = logical.Project(
            scan,
            [b.BBinary("+", b.BColumn(0, "x", dt.FLOAT),
                       b.BLiteral(1.0, dt.FLOAT), dt.FLOAT)],
            [("y", dt.FLOAT)],
        )
        outer = logical.Project(
            inner,
            [b.BBinary("*", b.BColumn(0, "y", dt.FLOAT),
                       b.BLiteral(2.0, dt.FLOAT), dt.FLOAT)],
            [("z", dt.FLOAT)],
        )
        return outer

    def test_adjacent_projects_collapse_to_one_operator(self):
        session = Session()
        session.sql.register_dict(
            {"x": np.array([1.0, 2.0], dtype=np.float32)}, "t")
        compiler = Compiler(session.catalog, QueryConfig(), "cpu")
        query = compiler.compile(self._nested_project_plan(), "<manual>")
        physical = query.root.pretty()
        assert physical.count("Project") == 1
        out = query.run(toPandas=True)
        np.testing.assert_allclose(out["z"], [4.0, 6.0])

    def test_merge_skipped_when_disabled(self):
        session = Session()
        session.sql.register_dict(
            {"x": np.array([3.0], dtype=np.float32)}, "t")
        compiler = Compiler(session.catalog,
                            QueryConfig({"fuse_operators": False}), "cpu")
        query = compiler.compile(self._nested_project_plan(), "<manual>")
        assert query.root.pretty().count("Project") == 2
        np.testing.assert_allclose(query.run(toPandas=True)["z"], [8.0])


class TestFusedOperatorUnits:
    def test_fused_filter_single_gather(self, session):
        from repro.storage.table import Table
        takes = []
        original = Table.take

        def counting_take(self, indices):
            takes.append(len(self.columns))
            return original(self, indices)

        Table.take = counting_take
        try:
            session.sql.query(
                "SELECT k, a, b, s FROM t WHERE a > 0 AND b > 0 AND k > 2").run()
        finally:
            Table.take = original
        # One fused gather for three conjuncts (the seed cascade did three).
        assert len(takes) == 0 or len(takes) == 1
