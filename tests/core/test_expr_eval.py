"""Expression evaluator edge cases not covered by the end-to-end suite."""

import pytest

from repro.core.session import Session


@pytest.fixture
def s():
    session = Session()
    session.sql.register_dict({
        "i": [1, -2, 3, 0],
        "f": [1.5, -2.5, float("nan"), 4.0],
        "s": ["Alpha", "beta", "alpha", "Betamax"],
        "b": [True, False, True, False],
    }, "t")
    return session


def run(session, sql):
    return session.spark.query(sql).run(toPandas=True)


class TestNullSemantics:
    def test_is_null_detects_nan(self, s):
        out = run(s, "SELECT i FROM t WHERE f IS NULL")
        assert out["i"].tolist() == [3]

    def test_is_not_null(self, s):
        out = run(s, "SELECT i FROM t WHERE f IS NOT NULL")
        assert out["i"].tolist() == [1, -2, 0]

    def test_strings_never_null(self, s):
        assert len(run(s, "SELECT s FROM t WHERE s IS NULL")) == 0


class TestCaseExpression:
    def test_first_matching_when_wins(self, s):
        out = run(s, "SELECT CASE WHEN i > 0 THEN 1 WHEN i >= 0 THEN 2 "
                     "ELSE 3 END AS c FROM t")
        assert out["c"].tolist() == [1, 3, 1, 2]

    def test_missing_else_defaults_to_zero(self, s):
        out = run(s, "SELECT CASE WHEN i > 0 THEN 9 END AS c FROM t")
        assert out["c"].tolist() == [9, 0, 9, 0]

    def test_case_in_where(self, s):
        out = run(s, "SELECT i FROM t WHERE CASE WHEN b THEN i ELSE 0 END > 0")
        assert out["i"].tolist() == [1, 3]


class TestCast:
    def test_float_to_int_truncates(self, s):
        out = run(s, "SELECT CAST(f AS int) AS c FROM t WHERE i = 1")
        assert out["c"].tolist() == [1]

    def test_int_to_string(self, s):
        out = run(s, "SELECT CAST(i AS varchar) AS c FROM t WHERE i = 3")
        assert out["c"].tolist() == ["3"]

    def test_bool_to_int(self, s):
        out = run(s, "SELECT CAST(b AS int) AS c FROM t")
        assert out["c"].tolist() == [1, 0, 1, 0]


class TestLikePatterns:
    def test_contains(self, s):
        out = run(s, "SELECT s FROM t WHERE s LIKE '%eta%'")
        assert out["s"].tolist() == ["beta", "Betamax"]

    def test_underscore_single_char(self, s):
        out = run(s, "SELECT s FROM t WHERE s LIKE '_lpha'")
        assert sorted(out["s"].tolist()) == ["Alpha", "alpha"]

    def test_case_sensitivity(self, s):
        assert len(run(s, "SELECT s FROM t WHERE s LIKE 'alpha'")) == 1

    def test_not_like(self, s):
        out = run(s, "SELECT s FROM t WHERE s NOT LIKE '%a%'")
        assert out["s"].tolist() == []


class TestBuiltins:
    def test_round_with_digits(self, s):
        out = run(s, "SELECT ROUND(f, 0) AS r FROM t WHERE i = 1")
        assert out["r"].tolist() == [2.0]

    def test_least_greatest(self, s):
        out = run(s, "SELECT LEAST(i, 0) AS lo, GREATEST(i, 0) AS hi FROM t")
        assert out["lo"].tolist() == [0, -2, 0, 0]
        assert out["hi"].tolist() == [1, 0, 3, 0]

    def test_power_and_log(self, s):
        out = run(s, "SELECT POW(2.0, i) AS p FROM t WHERE i = 3")
        assert out["p"][0] == pytest.approx(8.0)

    def test_length_of_strings(self, s):
        out = run(s, "SELECT LENGTH(s) AS n FROM t ORDER BY n DESC LIMIT 1")
        assert out["n"].tolist() == [7]       # Betamax

    def test_sigmoid_builtin(self, s):
        out = run(s, "SELECT SIGMOID(0.0 * i) AS half FROM t LIMIT 1")
        assert out["half"][0] == pytest.approx(0.5)


class TestArithmeticEdges:
    def test_integer_division_promotes_to_float(self, s):
        out = run(s, "SELECT i / 2 AS half FROM t WHERE i = 3")
        assert out["half"][0] == pytest.approx(1.5)

    def test_modulo(self, s):
        out = run(s, "SELECT i % 2 AS m FROM t WHERE i = 3")
        assert out["m"].tolist() == [1]

    def test_unary_minus_column(self, s):
        out = run(s, "SELECT -i AS n FROM t WHERE i = -2")
        assert out["n"].tolist() == [2]

    def test_scalar_only_expression(self, s):
        out = run(s, "SELECT 2 + 3 * 4 AS x FROM t LIMIT 1")
        assert out["x"].tolist() == [14]

    def test_comparison_between_columns(self, s):
        # Rows (i, f): (1, 1.5) no, (-2, -2.5) yes, (3, nan) no, (0, 4) no.
        out = run(s, "SELECT i FROM t WHERE i > f")
        assert out["i"].tolist() == [-2]


class TestStringLiteralEdges:
    def test_literal_absent_from_dictionary(self, s):
        assert len(run(s, "SELECT s FROM t WHERE s = 'missing'")) == 0
        assert len(run(s, "SELECT s FROM t WHERE s != 'missing'")) == 4

    def test_literal_on_left_side(self, s):
        out = run(s, "SELECT s FROM t WHERE 'beta' = s")
        assert out["s"].tolist() == ["beta"]

    def test_reversed_inequality(self, s):
        # 'beta' <= s  <=>  s >= 'beta'
        out = run(s, "SELECT s FROM t WHERE 'beta' <= s ORDER BY s")
        assert out["s"].tolist() == ["beta"]
