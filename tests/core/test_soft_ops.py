"""Soft operators: counts match expectations, gradients flow, exact swap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tcr
from repro.core.soft import (
    dense_domain_columns,
    joint_membership,
    soft_count,
    soft_groupby_avg,
    soft_groupby_count,
    soft_groupby_sum,
)
from repro.errors import ExecutionError
from repro.tcr.tensor import Tensor


def random_probs(rng, n, k):
    raw = rng.random((n, k)).astype(np.float32) + 1e-3
    return raw / raw.sum(axis=1, keepdims=True)


class TestSoftCount:
    def test_one_hot_rows_give_exact_counts(self):
        probs = Tensor(np.array([[1, 0], [1, 0], [0, 1]], dtype=np.float32))
        np.testing.assert_allclose(soft_count(probs).data, [2.0, 1.0])

    def test_counts_sum_to_row_count(self, rng):
        probs = Tensor(random_probs(rng, 50, 7))
        assert soft_count(probs).data.sum() == pytest.approx(50.0, rel=1e-4)

    def test_weights_scale_counts(self):
        probs = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32))
        weights = Tensor(np.array([0.5, 2.0], dtype=np.float32))
        np.testing.assert_allclose(soft_count(probs, weights).data, [0.5, 2.0])

    def test_rejects_non_2d(self):
        with pytest.raises(ExecutionError):
            soft_count(tcr.zeros(4))

    def test_gradient_is_row_weight(self):
        probs = tcr.tensor([[0.3, 0.7], [0.6, 0.4]], requires_grad=True)
        soft_count(probs).sum().backward()
        np.testing.assert_allclose(probs.grad, np.ones((2, 2)))


class TestJointMembership:
    def test_two_columns_matches_paper_matmul(self, rng):
        p1 = random_probs(rng, 20, 10)
        p2 = random_probs(rng, 20, 2)
        counts = soft_groupby_count([Tensor(p1), Tensor(p2)]).data
        want = (p1.T @ p2).reshape(-1)          # digit-major flattening
        np.testing.assert_allclose(counts, want, rtol=1e-5)

    def test_three_columns(self, rng):
        tensors = [Tensor(random_probs(rng, 12, k)) for k in (2, 3, 4)]
        counts = soft_groupby_count(tensors).data
        assert counts.shape == (24,)
        assert counts.sum() == pytest.approx(12.0, rel=1e-4)

    def test_membership_rows_sum_to_one(self, rng):
        tensors = [Tensor(random_probs(rng, 9, k)) for k in (10, 2)]
        membership = joint_membership(tensors).data
        np.testing.assert_allclose(membership.sum(axis=1), 1.0, rtol=1e-5)

    def test_row_count_mismatch_rejected(self, rng):
        with pytest.raises(ExecutionError):
            joint_membership([Tensor(random_probs(rng, 3, 2)),
                              Tensor(random_probs(rng, 4, 2))])

    @given(st.integers(1, 30), st.integers(2, 6), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_total_mass_invariant(self, n, k1, k2):
        rng = np.random.default_rng(n * 100 + k1 * 10 + k2)
        tensors = [Tensor(random_probs(rng, n, k1)),
                   Tensor(random_probs(rng, n, k2))]
        counts = soft_groupby_count(tensors).data
        # Probability mass is conserved: soft counts always total n.
        assert counts.sum() == pytest.approx(float(n), rel=1e-4)

    def test_hard_inputs_equal_exact_groupby(self, rng):
        digits = rng.integers(0, 4, size=40)
        sizes = rng.integers(0, 2, size=40)
        p1 = np.eye(4, dtype=np.float32)[digits]
        p2 = np.eye(2, dtype=np.float32)[sizes]
        counts = soft_groupby_count([Tensor(p1), Tensor(p2)]).data
        want = np.zeros((4, 2))
        np.add.at(want, (digits, sizes), 1.0)
        np.testing.assert_allclose(counts, want.reshape(-1), rtol=1e-5)


class TestSoftSumAvg:
    def test_soft_sum_on_hard_inputs(self, rng):
        labels = rng.integers(0, 3, size=30)
        values = rng.normal(size=30).astype(np.float32)
        probs = np.eye(3, dtype=np.float32)[labels]
        got = soft_groupby_sum([Tensor(probs)], Tensor(values)).data
        want = np.array([values[labels == c].sum() for c in range(3)])
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_soft_avg(self, rng):
        labels = np.array([0, 0, 1])
        values = np.array([2.0, 4.0, 10.0], dtype=np.float32)
        probs = np.eye(2, dtype=np.float32)[labels]
        got = soft_groupby_avg([Tensor(probs)], Tensor(values)).data
        np.testing.assert_allclose(got, [3.0, 10.0], rtol=1e-4)

    def test_gradients_reach_probabilities(self):
        probs = tcr.tensor([[0.5, 0.5], [0.2, 0.8]], requires_grad=True)
        values = tcr.tensor([1.0, 3.0])
        soft_groupby_sum([probs], values).sum().backward()
        assert probs.grad is not None


class TestDenseDomain:
    def test_cross_product_order_digit_major(self):
        cols = dense_domain_columns([np.arange(3), np.array(["S", "L"])])
        assert cols[0].tolist() == [0, 0, 1, 1, 2, 2]
        assert cols[1].tolist() == ["S", "L", "S", "L", "S", "L"]

    def test_single_domain(self):
        (col,) = dense_domain_columns([np.array([5, 7])])
        assert col.tolist() == [5, 7]
