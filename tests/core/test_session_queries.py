"""End-to-end SQL behaviour through the session API."""

import numpy as np
import pytest

from repro.core.session import Session
from repro.errors import ExecutionError


@pytest.fixture
def s():
    session = Session()
    session.sql.register_dict({
        "id": [1, 2, 3, 4, 5, 6],
        "dept": ["eng", "eng", "sales", "sales", "hr", "eng"],
        "salary": [100.0, 120.0, 80.0, 85.0, 60.0, 110.0],
        "senior": [True, True, False, True, False, False],
    }, "emp")
    session.sql.register_dict({
        "dept": ["eng", "sales", "legal"],
        "budget": [1000.0, 500.0, 200.0],
    }, "dept")
    return session


def run(session, sql, **kw):
    return session.spark.query(sql, **kw).run(toPandas=True)


class TestProjectionFilter:
    def test_select_star(self, s):
        out = run(s, "SELECT * FROM emp")
        assert out.columns == ["id", "dept", "salary", "senior"]
        assert len(out) == 6

    def test_arithmetic_and_alias(self, s):
        out = run(s, "SELECT id, salary * 1.1 AS raised FROM emp LIMIT 2")
        np.testing.assert_allclose(out["raised"], [110.0, 132.0], rtol=1e-5)

    def test_numeric_filters(self, s):
        out = run(s, "SELECT id FROM emp WHERE salary >= 100 AND id != 1")
        assert out["id"].tolist() == [2, 6]

    def test_string_equality_and_ranges(self, s):
        assert len(run(s, "SELECT id FROM emp WHERE dept = 'eng'")) == 3
        # 'hr' and 'sales' both sort after 'eng'.
        assert len(run(s, "SELECT id FROM emp WHERE dept > 'eng'")) == 3
        assert len(run(s, "SELECT id FROM emp WHERE dept != 'hr'")) == 5

    def test_boolean_column_filter(self, s):
        out = run(s, "SELECT id FROM emp WHERE senior")
        assert out["id"].tolist() == [1, 2, 4]

    def test_in_between_like(self, s):
        assert len(run(s, "SELECT id FROM emp WHERE dept IN ('hr', 'sales')")) == 3
        assert len(run(s, "SELECT id FROM emp WHERE salary BETWEEN 80 AND 100")) == 3
        assert len(run(s, "SELECT id FROM emp WHERE dept LIKE 'e%'")) == 3
        assert len(run(s, "SELECT id FROM emp WHERE dept LIKE '%al%'")) == 2

    def test_not_and_or(self, s):
        out = run(s, "SELECT id FROM emp WHERE NOT senior AND "
                     "(dept = 'hr' OR salary > 100)")
        assert out["id"].tolist() == [5, 6]

    def test_case_expression(self, s):
        out = run(s, "SELECT id, CASE WHEN salary >= 100 THEN 1 ELSE 0 END "
                     "AS high FROM emp ORDER BY id")
        assert out["high"].tolist() == [1, 1, 0, 0, 0, 1]

    def test_cast(self, s):
        out = run(s, "SELECT CAST(salary AS int) AS s_int FROM emp LIMIT 1")
        assert out["s_int"].tolist() == [100]

    def test_builtins(self, s):
        out = run(s, "SELECT ABS(-salary) AS a, UPPER(dept) AS u FROM emp LIMIT 1")
        assert out["a"].tolist() == [100.0]
        assert out["u"].tolist() == ["ENG"]


class TestOrderLimitDistinct:
    def test_order_by_multiple_keys(self, s):
        out = run(s, "SELECT dept, salary FROM emp ORDER BY dept, salary DESC")
        assert out["dept"].tolist()[:3] == ["eng", "eng", "eng"]
        assert out["salary"].tolist()[:3] == [120.0, 110.0, 100.0]

    def test_order_by_expression_not_in_output(self, s):
        out = run(s, "SELECT id FROM emp ORDER BY salary DESC")
        assert out.columns == ["id"]
        assert out["id"].tolist() == [2, 6, 1, 4, 3, 5]

    def test_order_by_string_column(self, s):
        out = run(s, "SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert out["dept"].tolist() == ["eng", "hr", "sales"]

    def test_limit_offset(self, s):
        out = run(s, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 3")
        assert out["id"].tolist() == [4, 5]

    def test_topk_matches_sort_limit(self, s):
        fused = run(s, "SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 3")
        unfused = s.spark.query(
            "SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 3",
            extra_config={"topk_impl": "sort"},
        ).run(toPandas=True)
        assert fused.equals(unfused)

    def test_distinct_rows(self, s):
        out = run(s, "SELECT DISTINCT senior FROM emp")
        assert len(out) == 2


class TestAggregates:
    def test_global_aggregates(self, s):
        out = run(s, "SELECT COUNT(*), SUM(salary), AVG(salary), "
                     "MIN(salary), MAX(salary) FROM emp")
        assert out["COUNT(*)"].tolist() == [6]
        assert out["SUM(salary)"][0] == pytest.approx(555.0)
        assert out["AVG(salary)"][0] == pytest.approx(92.5)
        assert out["MIN(salary)"][0] == 60.0
        assert out["MAX(salary)"][0] == 110.0 + 10.0

    def test_group_by_with_sort_impl(self, s):
        out = s.spark.query(
            "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept "
            "ORDER BY dept",
            extra_config={"groupby_impl": "sort"},
        ).run(toPandas=True)
        assert out["dept"].tolist() == ["eng", "hr", "sales"]
        assert out["COUNT(*)"].tolist() == [3, 1, 2]

    def test_group_by_with_hash_impl(self, s):
        sort_out = s.spark.query(
            "SELECT dept, SUM(salary) FROM emp GROUP BY dept ORDER BY dept",
            extra_config={"groupby_impl": "sort"},
        ).run(toPandas=True)
        hash_out = s.spark.query(
            "SELECT dept, SUM(salary) FROM emp GROUP BY dept ORDER BY dept",
            extra_config={"groupby_impl": "hash"},
        ).run(toPandas=True)
        assert sort_out.equals(hash_out)

    def test_having(self, s):
        out = run(s, "SELECT dept, COUNT(*) AS c FROM emp GROUP BY dept "
                     "HAVING COUNT(*) > 1 ORDER BY dept")
        assert out["dept"].tolist() == ["eng", "sales"]

    def test_count_distinct(self, s):
        out = run(s, "SELECT COUNT(DISTINCT dept) FROM emp")
        assert out["COUNT(DISTINCT dept)"].tolist() == [3]

    def test_grouped_count_distinct(self, s):
        out = run(s, "SELECT senior, COUNT(DISTINCT dept) AS d FROM emp "
                     "GROUP BY senior ORDER BY senior")
        assert out["d"].tolist() == [3, 2]

    def test_post_aggregate_arithmetic(self, s):
        out = run(s, "SELECT dept, SUM(salary) / COUNT(*) AS per_head FROM emp "
                     "GROUP BY dept ORDER BY dept")
        np.testing.assert_allclose(out["per_head"], [110.0, 60.0, 82.5])

    def test_multi_key_group(self, s):
        out = run(s, "SELECT dept, senior, COUNT(*) FROM emp "
                     "GROUP BY dept, senior ORDER BY dept, senior")
        assert len(out) == 5


class TestJoins:
    def test_inner_join(self, s):
        out = run(s, "SELECT e.id, d.budget FROM emp e JOIN dept d "
                     "ON e.dept = d.dept ORDER BY e.id")
        assert len(out) == 5                    # hr has no dept row
        assert out["budget"].tolist()[0] == 1000.0

    def test_left_join_fills(self, s):
        out = run(s, "SELECT e.id, d.budget FROM emp e LEFT JOIN dept d "
                     "ON e.dept = d.dept ORDER BY e.id")
        assert len(out) == 6
        assert np.isnan(out["budget"][4])       # hr row

    def test_cross_join(self, s):
        out = run(s, "SELECT e.id FROM emp e CROSS JOIN dept d")
        assert len(out) == 18

    def test_join_then_aggregate(self, s):
        out = run(s, "SELECT d.dept, SUM(e.salary) AS total FROM emp e "
                     "JOIN dept d ON e.dept = d.dept GROUP BY d.dept "
                     "ORDER BY total DESC")
        assert out["dept"].tolist() == ["eng", "sales"]

    def test_join_with_residual(self, s):
        out = run(s, "SELECT e.id FROM emp e JOIN dept d "
                     "ON e.dept = d.dept AND e.salary < d.budget ORDER BY e.id")
        assert len(out) == 5


class TestSubqueries:
    def test_nested_select(self, s):
        out = run(s, "SELECT COUNT(*) FROM "
                     "(SELECT id FROM emp WHERE salary > 90)")
        assert out["COUNT(*)"].tolist() == [3]

    def test_aggregate_over_subquery_aggregate(self, s):
        out = run(s, "SELECT AVG(c) FROM (SELECT dept, COUNT(*) AS c "
                     "FROM emp GROUP BY dept)")
        assert out["AVG(c)"][0] == pytest.approx(2.0)


class TestRuntimeBehaviour:
    def test_re_registration_changes_results(self, s):
        q = s.spark.query("SELECT COUNT(*) FROM emp")
        assert q.run().scalar() == 6
        s.sql.register_dict({"id": [1], "dept": ["x"], "salary": [1.0],
                             "senior": [False]}, "emp")
        assert q.run().scalar() == 1

    def test_re_registration_schema_check(self, s):
        q = s.spark.query("SELECT salary FROM emp")
        s.sql.register_dict({"id": [1]}, "emp")
        with pytest.raises(ExecutionError, match="no longer has columns"):
            q.run()

    def test_device_compilation(self, s):
        out = s.spark.query("SELECT dept, COUNT(*) FROM emp GROUP BY dept "
                            "ORDER BY dept", device="cuda").run(toPandas=True)
        assert out["COUNT(*)"].tolist() == [3, 1, 2]

    def test_empty_filter_result(self, s):
        out = run(s, "SELECT id, dept FROM emp WHERE salary > 1000")
        assert len(out) == 0

    def test_empty_group_by(self, s):
        out = run(s, "SELECT dept, COUNT(*) FROM emp WHERE salary > 1000 "
                     "GROUP BY dept")
        assert len(out) == 0

    def test_global_count_on_empty(self, s):
        out = run(s, "SELECT COUNT(*) FROM emp WHERE salary > 1000")
        assert out["COUNT(*)"].tolist() == [0]

    def test_scalar_result_api(self, s):
        result = s.spark.query("SELECT COUNT(*) FROM emp").run()
        assert result.scalar() == 6
        with pytest.raises(ExecutionError):
            s.spark.query("SELECT id FROM emp").run().scalar()

    def test_explain_contains_plan(self, s):
        q = s.spark.query("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        text = q.explain()
        assert "Aggregate" in text and "Scan(emp)" in text

    def test_unknown_config_key_rejected(self, s):
        with pytest.raises(ValueError):
            s.spark.query("SELECT id FROM emp", extra_config={"bogus": 1})
