"""Regression tests for operator correctness fixes.

Each test failed on the seed implementations:

* multi-key equi-join composed key codes with radix arithmetic that wraps
  int64 for high-cardinality composite keys (phantom matches);
* a residual join predicate ran after NULL-filling, silently degrading
  LEFT/RIGHT joins to inner joins;
* ``HashAggregateExec`` stacked mixed-dtype group keys through float64,
  collapsing distinct int keys above 2^53;
* empty-input aggregation emitted int64 columns regardless of the
  aggregate's real output dtype.
"""

import numpy as np
import pytest

from repro.core.session import Session


class TestMultiKeyJoinOverflow:
    def test_no_phantom_matches_at_radix_overflow(self):
        # Five key columns whose per-key code domain is exactly {0..65534}
        # (radix 65536 = 2^16 in the old scheme). With five keys the radix
        # product is 2^80: the first key's contribution is ≡ 0 (mod 2^64),
        # so the seed matched (2,7,7,7,7) against left row (7,7,7,7,7).
        n = 65535
        session = Session()
        base = np.arange(n, dtype=np.int64)
        session.sql.register_dict(
            {"a": base, "b": base, "c": base, "d": base, "e": base,
             "v": np.arange(n, dtype=np.float32)}, "l")
        session.sql.register_dict(
            {"a": [2, 9], "b": [7, 9], "c": [7, 9], "d": [7, 9], "e": [7, 9],
             "w": [111.0, 222.0]}, "r")
        out = session.spark.query(
            "SELECT l.v, r.w FROM l JOIN r ON l.a = r.a AND l.b = r.b "
            "AND l.c = r.c AND l.d = r.d AND l.e = r.e ORDER BY l.v"
        ).run(toPandas=True)
        # Only (9,9,9,9,9) truly matches; the seed also returned v=7.
        assert out["v"].tolist() == [9.0]
        assert out["w"].tolist() == [222.0]

    def test_three_key_join_matches_reference(self):
        rng = np.random.default_rng(7)
        session = Session()
        left = {k: rng.integers(0, 4, size=60) for k in ("a", "b", "c")}
        left["v"] = np.arange(60, dtype=np.float32)
        right = {k: rng.integers(0, 4, size=40) for k in ("a", "b", "c")}
        right["w"] = np.arange(40, dtype=np.float32)
        session.sql.register_dict(left, "l")
        session.sql.register_dict(right, "r")
        out = session.spark.query(
            "SELECT l.v, r.w FROM l JOIN r ON l.a = r.a AND l.b = r.b "
            "AND l.c = r.c"
        ).run(toPandas=True)
        want = sorted(
            (float(left["v"][i]), float(right["w"][j]))
            for i in range(60) for j in range(40)
            if all(left[k][i] == right[k][j] for k in ("a", "b", "c"))
        )
        got = sorted(zip(out["v"].tolist(), out["w"].tolist()))
        assert got == want


class TestOuterJoinResidual:
    def _session(self):
        session = Session()
        session.sql.register_dict({"a": [1, 2, 3], "v": [10.0, 20.0, 30.0]}, "l")
        session.sql.register_dict({"a": [1, 2], "w": [3.0, 8.0]}, "r")
        return session

    def test_left_join_keeps_unmatched_rows(self):
        out = self._session().spark.query(
            "SELECT l.a, r.w FROM l LEFT JOIN r ON l.a = r.a AND r.w > 5.0 "
            "ORDER BY l.a"
        ).run(toPandas=True)
        # Seed applied the residual after NULL-filling and returned only a=2.
        assert out["a"].tolist() == [1, 2, 3]
        w = out["w"].tolist()
        assert np.isnan(w[0])        # matched, but every match fails the residual
        assert w[1] == 8.0
        assert np.isnan(w[2])        # no key match at all

    def test_right_join_keeps_unmatched_rows(self):
        session = Session()
        session.sql.register_dict({"a": [1, 2], "v": [10.0, 20.0]}, "l")
        session.sql.register_dict({"a": [1, 2, 3], "w": [3.0, 8.0, 9.0]}, "r")
        out = session.spark.query(
            "SELECT r.a, r.w, l.v FROM l RIGHT JOIN r ON l.a = r.a AND l.v > 15.0 "
            "ORDER BY r.a"
        ).run(toPandas=True)
        assert out["a"].tolist() == [1, 2, 3]
        v = out["v"].tolist()
        assert np.isnan(v[0])
        assert v[1] == 20.0
        assert np.isnan(v[2])

    def test_inner_join_residual_still_filters(self):
        out = self._session().spark.query(
            "SELECT l.a, r.w FROM l JOIN r ON l.a = r.a AND r.w > 5.0"
        ).run(toPandas=True)
        assert out["a"].tolist() == [2]
        assert out["w"].tolist() == [8.0]


class TestHashAggregateMixedKeys:
    def test_int_keys_above_2_53_stay_distinct(self):
        session = Session()
        session.sql.register_dict(
            {"k1": np.array([2**53, 2**53 + 1, 2**53], dtype=np.int64),
             "k2": np.array([0.5, 0.5, 0.5], dtype=np.float32),
             "v": np.array([1.0, 2.0, 4.0], dtype=np.float32)}, "t")
        out = session.spark.query(
            "SELECT k1, k2, COUNT(*), SUM(v) FROM t GROUP BY k1, k2 ORDER BY k1",
            extra_config={"groupby_impl": "hash"},
        ).run(toPandas=True)
        # Seed promoted k1 to float64 (2^53 == 2^53+1) and returned 1 group.
        assert out["k1"].tolist() == [2**53, 2**53 + 1]
        assert out["COUNT(*)"].tolist() == [2, 1]
        assert out["SUM(v)"].tolist() == [5.0, 2.0]

    def test_hash_matches_sort_on_mixed_keys(self):
        rng = np.random.default_rng(3)
        session = Session()
        session.sql.register_dict(
            {"ki": rng.integers(0, 5, size=50),
             "kf": rng.integers(0, 3, size=50).astype(np.float32) / 2.0,
             "v": rng.normal(size=50).astype(np.float32)}, "t")
        sql = "SELECT ki, kf, COUNT(*), SUM(v) FROM t GROUP BY ki, kf ORDER BY ki, kf"
        hash_out = session.spark.query(
            sql, extra_config={"groupby_impl": "hash"}).run(toPandas=True)
        sort_out = session.spark.query(
            sql, extra_config={"groupby_impl": "sort"}).run(toPandas=True)
        assert hash_out.equals(sort_out, atol=1e-4)


class TestEmptyAggregateDtypes:
    @pytest.mark.parametrize("impl", ["sort", "hash"])
    def test_empty_input_matches_nonempty_dtypes(self, impl):
        session = Session()
        session.sql.register_dict(
            {"k": np.array([1, 2], dtype=np.int64),
             "v": np.array([1.5, 2.5], dtype=np.float32)}, "t")
        sql_tail = "SUM(v), AVG(v), MIN(v), MAX(v), COUNT(*) FROM t {} GROUP BY k"
        empty = session.spark.query(
            "SELECT k, " + sql_tail.format("WHERE k < 0"),
            extra_config={"groupby_impl": impl}).run()
        full = session.spark.query(
            "SELECT k, " + sql_tail.format(""),
            extra_config={"groupby_impl": impl}).run()
        assert len(empty) == 0
        for name in empty.column_names:
            assert empty.column(name).dtype == full.column(name).dtype, name


class TestTopKWeights:
    def test_argpartition_fast_path_preserves_weights(self):
        # The seed's TopK fast path rebuilt the Relation without weights,
        # silently dropping soft-filter multiplicities; the sort fallback
        # (multi-key or k >= n) kept them.
        from repro.core.operators.base import Relation
        from repro.core.operators.sort import TopKExec
        from repro.sql import bound as b
        from repro.storage import types as dt
        from repro.storage.table import Table
        from repro.tcr.tensor import Tensor

        values = np.array([5.0, 1.0, 4.0, 2.0, 3.0], dtype=np.float32)
        weights = Tensor(np.array([0.5, 0.1, 0.4, 0.2, 0.3], dtype=np.float32))
        relation = Relation(Table.from_dict("t", {"v": values}), weights)
        key = b.BColumn(0, "v", dt.FLOAT)
        out = TopKExec([(key, False)], k=2)(relation)   # fast path: n > k
        assert out.table.column("v").decode().tolist() == [5.0, 4.0]
        assert out.weights is not None
        assert out.weights.data.tolist() == pytest.approx([0.5, 0.4])


class TestDistinctLargeIntKeys:
    def test_no_float64_collapse_above_2_to_53(self):
        session = Session()
        session.sql.register_dict(
            {"k": np.array([2**53, 2**53 + 1, 2**53], dtype=np.int64)}, "t")
        out = session.spark.query(
            "SELECT DISTINCT k FROM t ORDER BY k").run(toPandas=True)
        # Seed stacked keys through float64 (2^53 == 2^53+1): one row.
        assert out["k"].tolist() == [2**53, 2**53 + 1]

    def test_multi_column_distinct_matches_reference(self):
        rng = np.random.default_rng(11)
        session = Session()
        a = rng.integers(0, 4, size=60)
        s = np.array(["x", "y", "z"], dtype=object)[rng.integers(0, 3, size=60)]
        session.sql.register_dict({"a": a, "s": s}, "t")
        out = session.spark.query(
            "SELECT DISTINCT a, s FROM t ORDER BY a, s").run(toPandas=True)
        want = sorted(set(zip(a.tolist(), s.tolist())))
        assert list(zip(out["a"].tolist(), out["s"].tolist())) == want


class TestEmptyBuildSideOuterJoin:
    def test_left_join_against_zero_row_table(self):
        # Seed crashed in _null_fill_column: with a zero-row build side every
        # probe row is unmatched and the "safe" placeholder index 0 gathered
        # out of bounds.
        session = Session()
        session.sql.register_dict({"a": [1, 2, 3], "v": [10.0, 20.0, 30.0]}, "l")
        session.sql.register_dict(
            {"a": np.empty(0, dtype=np.int64),
             "w": np.empty(0, dtype=np.float64),
             "s": np.empty(0, dtype=object)}, "r")
        out = session.spark.query(
            "SELECT l.a, r.w, r.s FROM l LEFT JOIN r ON l.a = r.a ORDER BY l.a"
        ).run(toPandas=True)
        assert out["a"].tolist() == [1, 2, 3]
        assert all(np.isnan(w) for w in out["w"])
        assert out["s"].tolist() == ["", "", ""]

    def test_inner_join_against_zero_row_table_is_empty(self):
        session = Session()
        session.sql.register_dict({"a": [1, 2, 3], "v": [10.0, 20.0, 30.0]}, "l")
        session.sql.register_dict(
            {"a": np.empty(0, dtype=np.int64),
             "w": np.empty(0, dtype=np.float64)}, "r")
        out = session.spark.query(
            "SELECT l.a, r.w FROM l JOIN r ON l.a = r.a").run(toPandas=True)
        assert len(out) == 0
