"""Trainable queries: differentiability, soft/exact swap, training dynamics."""

import numpy as np
import pytest

from repro.core.config import constants
from repro.core.session import Session
from repro.errors import ExecutionError
from repro.storage.encodings import PEEncoding
from repro.tcr import nn, optim
from repro.tcr.tensor import Tensor


@pytest.fixture
def trainable_setup():
    session = Session()
    model = nn.Linear(2, 2)

    @session.udf("Label float", name="classify", modules=[model])
    def classify(x):
        return PEEncoding.encode(model(x), domain=[0, 1])

    rng = np.random.default_rng(0)
    features = rng.normal(size=(32, 2)).astype(np.float32)
    session.sql.register_tensor(Tensor(features), "bag")
    query = session.spark.query(
        "SELECT Label, COUNT(*) FROM classify(bag) GROUP BY Label",
        extra_config={constants.TRAINABLE: True},
    )
    return session, query, model, features


class TestTrainableMechanics:
    def test_run_returns_differentiable_tensor(self, trainable_setup):
        _, query, _, _ = trainable_setup
        counts = query.run()
        assert isinstance(counts, Tensor)
        assert counts.requires_grad
        assert counts.shape == (2,)
        assert counts.data.sum() == pytest.approx(32.0, rel=1e-4)

    def test_parameters_reach_udf_model(self, trainable_setup):
        _, query, model, _ = trainable_setup
        params = {id(p) for p in query.parameters()}
        assert id(model.weight) in params
        assert id(model.bias) in params

    def test_backward_populates_grads(self, trainable_setup):
        _, query, model, _ = trainable_setup
        query.run().sum().backward()
        assert model.weight.grad is not None

    def test_eval_mode_returns_exact_result(self, trainable_setup):
        _, query, model, features = trainable_setup
        query.eval()
        result = query.run(toPandas=True)
        labels = model(Tensor(features)).data.argmax(axis=1)
        want = np.bincount(labels, minlength=2)
        np.testing.assert_array_equal(result["COUNT(*)"], want)

    def test_eval_output_is_dense_over_domain(self, trainable_setup):
        _, query, _, _ = trainable_setup
        query.eval()
        result = query.run(toPandas=True)
        assert result["Label"].tolist() == [0, 1]     # both classes present

    def test_soft_counts_close_to_exact_when_confident(self):
        session = Session()
        model = nn.Linear(1, 2)
        model.weight.data = np.array([[-20.0], [20.0]], dtype=np.float32)
        model.bias.data = np.zeros(2, dtype=np.float32)

        @session.udf("Label float", name="confident", modules=[model])
        def confident(x):
            return PEEncoding.encode(model(x), domain=[0, 1])

        data = np.array([[-1.0], [-1.0], [1.0]], dtype=np.float32)
        session.sql.register_tensor(Tensor(data), "b")
        query = session.spark.query(
            "SELECT Label, COUNT(*) FROM confident(b) GROUP BY Label",
            extra_config={constants.TRAINABLE: True},
        )
        soft = query.run().data
        np.testing.assert_allclose(soft, [2.0, 1.0], atol=1e-4)

    def test_training_reduces_count_loss(self, trainable_setup):
        _, query, _, features = trainable_setup
        target = Tensor(np.array([24.0, 8.0], dtype=np.float32))
        opt = optim.Adam(query.parameters(), lr=0.1)
        first = None
        for _ in range(60):
            opt.zero_grad()
            loss = ((query.run() - target) ** 2).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.05

    def test_non_pe_group_key_gives_clear_error(self):
        session = Session()
        session.sql.register_dict({"a": [1, 2], "b": [1.0, 2.0]}, "t")
        query = session.spark.query(
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            extra_config={constants.TRAINABLE: True},
        )
        with pytest.raises(ExecutionError, match="Probability-Encoded"):
            query.run()

    def test_min_max_not_relaxable(self, trainable_setup):
        session, _, _, _ = trainable_setup
        query = session.spark.query(
            "SELECT Label, MIN(Label) FROM classify(bag) GROUP BY Label",
            extra_config={constants.TRAINABLE: True},
        )
        with pytest.raises(ExecutionError, match="relaxation"):
            query.run()


class TestSoftFilter:
    def test_soft_filter_produces_weighted_counts(self):
        session = Session()
        session.sql.register_dict(
            {"x": [0.0, 0.5, 1.0], "label": [0, 0, 1]}, "t")
        model = nn.Linear(1, 2)

        # A FROM-clause TVF receives one positional arg per table column.
        @session.udf("L float", name="lab", modules=[model])
        def lab(x, label):
            return PEEncoding.encode(model(x.reshape(-1, 1)), domain=[0, 1])

        query = session.spark.query(
            "SELECT L, COUNT(*) FROM lab(t) GROUP BY L",
            extra_config={constants.TRAINABLE: True},
        )
        # exercises PE group over a multi-column table input
        counts = query.run()
        assert counts.shape == (2,)

    def test_soft_filter_keeps_rows_as_weights(self):
        session = Session()
        threshold_model = nn.Linear(1, 1)
        threshold_model.weight.data = np.array([[1.0]], dtype=np.float32)
        threshold_model.bias.data = np.array([0.0], dtype=np.float32)

        @session.udf("float", name="score", modules=[threshold_model])
        def score(x):
            return threshold_model(x.reshape(-1, 1)).reshape(-1)

        session.sql.register_dict({"x": [0.0, 10.0, -10.0]}, "t")
        simple = session.spark.query(
            "SELECT x FROM t WHERE score(x) > 0",
            extra_config={constants.TRAINABLE: True, constants.SOFT_FILTER: True},
        )
        result = simple.run()
        # Soft filter keeps all rows during training (weights, not deletion).
        assert result.shape[0] == 3

    def test_soft_filter_exact_in_eval(self):
        session = Session()
        session.sql.register_dict({"x": [-1.0, 2.0, 3.0]}, "t")
        query = session.spark.query(
            "SELECT x FROM t WHERE x > 0",
            extra_config={constants.TRAINABLE: True, constants.SOFT_FILTER: True},
        )
        query.eval()
        out = query.run(toPandas=True)
        assert out["x"].tolist() == [2.0, 3.0]
