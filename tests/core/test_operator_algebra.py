"""Property-based operator-algebra tests (hypothesis).

Four algebraic contracts the execution engine relies on:

* **Fusion transparency** — fused Filter/Project pipelines produce exactly
  what the unfused operator cascade produces (`fuse_operators` on vs. off).
* **Partial-aggregate soundness** — merging per-shard partial states equals
  aggregating the whole relation, for every exact-mergeable aggregate and
  every split of the input (including empty and single-row shards).
* **Shard-count invariance** — `shards ∈ {1, 2, 3, 7}` produce bit-identical
  results over randomized tables, including empty tables, all-NULL columns
  and shards that degenerate to single rows.
* **Compiled ≡ interpreted** — the vectorized expression kernels
  (`compile_exprs` on) reproduce the tree-walking interpreter bit-for-bit
  over randomized expression trees (arithmetic, comparisons, CASE, CAST,
  builtins, LIKE/IN/BETWEEN/IS NULL, NULL/NaN data, empty and single-row
  tables, dictionary- and char-code-encoded string columns), serial and
  sharded — and the same law over *whole-pipeline* callables
  (`compile_pipelines` on): fused scan→filter→project[→grouped aggregate]
  kernels at shards 1/3/4, including the sharded grouped-partial merge.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.operators.aggregate import (
    _global_agg_column,
    global_partial,
    merge_global_partials,
    spec_mergeable,
)
from repro.core.session import Session
from repro.sql.bound import AggSpec
from repro.storage import types as dt
from repro.storage.column import Column
from repro.storage.table import Table

SETTINGS = dict(max_examples=25, deadline=None)


# ----------------------------------------------------------------------
# Table strategies
# ----------------------------------------------------------------------
@st.composite
def tables(draw, min_rows=0, max_rows=48):
    n = draw(st.integers(min_rows, max_rows))
    ints = draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n))
    floats = draw(st.lists(
        st.one_of(st.floats(-100, 100, width=32), st.just(float("nan"))),
        min_size=n, max_size=n))
    words = draw(st.lists(st.sampled_from(["ant", "bee", "cat", "dog", ""]),
                          min_size=n, max_size=n))
    return {
        "id": np.arange(n, dtype=np.int64),
        "x": np.asarray(ints, dtype=np.int64),
        "y": np.asarray(floats, dtype=np.float32),
        "s": np.asarray(words, dtype=object),
    }


def _register(data) -> Session:
    session = Session()
    session.sql.register_dict(dict(data), "t")
    return session


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _assert_bitwise(a, b, context):
    assert list(a) == list(b), context
    for name in a:
        av, bv = a[name], b[name]
        assert av.dtype == bv.dtype, (context, name, av.dtype, bv.dtype)
        if av.dtype.kind == "f":
            assert np.array_equal(av, bv, equal_nan=True), (context, name)
        else:
            assert np.array_equal(av, bv), (context, name)


STATEMENTS = [
    "SELECT id, x * 2 - 1 AS v, y FROM t WHERE x > -10 AND y < 50.0",
    "SELECT id, y + y AS w FROM t WHERE x % 3 = 0 OR s = 'bee'",
    "SELECT id FROM t WHERE s IN ('ant', 'dog') AND x BETWEEN -20 AND 20",
    "SELECT COUNT(*) AS c, MIN(x) AS mn, MAX(x) AS mx, SUM(x) AS sm, "
    "AVG(x) AS av FROM t WHERE y IS NOT NULL",
    "SELECT s, COUNT(*) AS c, SUM(x) AS sm FROM t GROUP BY s",
    "SELECT id, x FROM t ORDER BY x DESC, id LIMIT 7",
    "SELECT id, CASE WHEN x > 0 THEN y ELSE -y END AS v FROM t "
    "WHERE s LIKE '%t' OR UPPER(s) = 'BEE'",
    "SELECT id, CAST(y AS INT) AS yi, ROUND(y, 1) AS yr FROM t "
    "WHERE LENGTH(s) BETWEEN 1 AND 3 AND s NOT LIKE '_o%'",
]


# ----------------------------------------------------------------------
# Fused vs. unfused
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(data=tables())
def test_fused_equals_unfused(data):
    session = _register(data)
    for stmt in STATEMENTS:
        fused = _snapshot(session.sql.query(
            stmt, extra_config={"fuse_operators": True}).run())
        unfused = _snapshot(session.sql.query(
            stmt, extra_config={"fuse_operators": False}).run())
        _assert_bitwise(fused, unfused, stmt)


# ----------------------------------------------------------------------
# Shard-count invariance
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(data=tables())
def test_shard_count_invariance(data):
    session = _register(data)
    for stmt in STATEMENTS:
        serial = _snapshot(session.sql.query(stmt).run())
        for shards in (2, 3, 7):
            sharded = _snapshot(session.sql.query(stmt, extra_config={
                "shards": shards, "parallel_min_rows": 2}).run())
            _assert_bitwise(serial, sharded, (stmt, shards))


@settings(**SETTINGS)
@given(data=tables(min_rows=0, max_rows=3))
def test_shard_invariance_degenerate_tables(data):
    """Empty tables, single rows, and shard counts exceeding the row count."""
    session = _register(data)
    for stmt in STATEMENTS:
        serial = _snapshot(session.sql.query(stmt).run())
        sharded = _snapshot(session.sql.query(stmt, extra_config={
            "shards": 7, "parallel_min_rows": 0}).run())
        _assert_bitwise(serial, sharded, stmt)


@settings(**SETTINGS)
@given(n=st.integers(0, 40))
def test_shard_invariance_all_null_column(n):
    session = _register({
        "id": np.arange(n, dtype=np.int64),
        "x": np.arange(n, dtype=np.int64) % 5,
        "y": np.full(n, np.nan, dtype=np.float32),
    })
    for stmt in ("SELECT id, y FROM t WHERE y IS NULL",
                 "SELECT COUNT(*) AS c, MIN(y) AS mn, MAX(y) AS mx FROM t",
                 "SELECT x, COUNT(*) AS c FROM t GROUP BY x"):
        serial = _snapshot(session.sql.query(stmt).run())
        sharded = _snapshot(session.sql.query(stmt, extra_config={
            "shards": 4, "parallel_min_rows": 2}).run())
        _assert_bitwise(serial, sharded, stmt)


def test_count_distinct_collapses_nans_consistently():
    """All NULLs (NaNs) count as one distinct value, identically in the
    sort, hash and global aggregate implementations (review finding: the
    run-comparison paths treated every NaN as its own value)."""
    session = _register({
        "k": np.asarray([0, 0, 0, 1, 1], dtype=np.int64),
        "y": np.asarray([np.nan, np.nan, 1.0, np.nan, 2.0], dtype=np.float32),
    })
    for impl in ("sort", "hash"):
        result = session.sql.query(
            "SELECT k, COUNT(DISTINCT y) AS c FROM t GROUP BY k",
            extra_config={"groupby_impl": impl}).run()
        assert result.column("c").tolist() == [2, 2], impl
    top = session.sql.query("SELECT COUNT(DISTINCT y) AS c FROM t").run()
    assert top.scalar() == 3


# ----------------------------------------------------------------------
# Partial-aggregate merge == whole-relation aggregate
# ----------------------------------------------------------------------
def _spec(func, arg_kind=None):
    arg = None
    if arg_kind is not None:
        from repro.sql.bound import BColumn
        data_type = dt.INT if arg_kind == "int" else dt.FLOAT
        arg = BColumn(0, "v", data_type)
    out_type = dt.INT if func == "COUNT" else (
        dt.FLOAT if func == "AVG" else
        (dt.INT if arg_kind == "int" else dt.FLOAT))
    return AggSpec(func=func, arg=arg, distinct=False, name="out",
                   data_type=out_type)


@settings(**SETTINGS)
@given(
    values=st.lists(st.integers(-1000, 1000), max_size=60),
    cuts=st.lists(st.integers(0, 60), max_size=5),
    func=st.sampled_from(["COUNT", "SUM", "MIN", "MAX", "AVG"]),
)
def test_partial_merge_equals_whole_int(values, cuts, func):
    data = np.asarray(values, dtype=np.int64)
    n = len(data)
    spec = _spec(func, None if func == "COUNT" else "int")
    assert spec_mergeable(spec)
    column = Column.from_values("v", data)
    whole = _global_agg_column(spec, None if spec.arg is None else column,
                               n, column.device)
    bounds = sorted({min(c, n) for c in cuts} | {0, n})
    partials = []
    for start, stop in zip(bounds, bounds[1:] or [n]):
        piece = column.slice_rows(start, stop)
        partials.append(global_partial(
            spec, None if spec.arg is None else piece, stop - start))
    if not partials:
        partials.append(global_partial(
            spec, None if spec.arg is None else column.slice_rows(0, 0), 0))
    merged = merge_global_partials(spec, partials, column.device)
    a, b = whole.tensor.detach().data, merged.tensor.detach().data
    assert a.dtype == b.dtype, (func, a.dtype, b.dtype)
    assert np.array_equal(a, b, equal_nan=True), (func, a, b)


# ----------------------------------------------------------------------
# Compiled kernels ≡ interpreter
# ----------------------------------------------------------------------
INTERP_CONFIG = {"compile_exprs": False, "compile_pipelines": False}
KERNEL_CONFIGS = (
    {"compile_exprs": True, "compile_pipelines": False},
    {"compile_exprs": True, "compile_pipelines": False,
     "shards": 3, "parallel_min_rows": 2},
    # Whole-pipeline codegen (PR 8): the same law over fused callables,
    # serial and sharded (odd and even shard counts — unequal and equal
    # grouped-partial splits).
    {"compile_exprs": True, "compile_pipelines": True},
    {"compile_exprs": True, "compile_pipelines": True,
     "shards": 3, "parallel_min_rows": 2},
    {"compile_exprs": True, "compile_pipelines": True,
     "shards": 4, "parallel_min_rows": 2},
)

_NUM_LEAVES = ("id", "x", "y", "3", "0.5", "-2")
_STR_LITERALS = ("ant", "bee", "cat", "dog", "", "a%t")
_LIKE_PATTERNS = ("%t", "_o%", "a_t", "%", "", "b%e", "c__", "%a%")


@st.composite
def bool_exprs(draw, depth=2):
    """Randomized boolean SQL expression over the `tables()` schema."""
    choices = ["compare", "strcmp", "like", "in", "null", "between"]
    if depth > 0:
        choices += ["and", "or", "not", "strfn"]
    kind = draw(st.sampled_from(choices))
    if kind == "compare":
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        left = draw(num_exprs(depth=max(depth - 1, 0)))
        right = draw(num_exprs(depth=max(depth - 1, 0)))
        return f"({left} {op} {right})"
    if kind == "strcmp":
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        lit = draw(st.sampled_from(_STR_LITERALS))
        if draw(st.booleans()):
            return f"('{lit}' {op} s)"
        return f"(s {op} '{lit}')"
    if kind == "like":
        pattern = draw(st.sampled_from(_LIKE_PATTERNS))
        negated = "NOT " if draw(st.booleans()) else ""
        return f"(s {negated}LIKE '{pattern}')"
    if kind == "in":
        negated = "NOT " if draw(st.booleans()) else ""
        if draw(st.booleans()):
            values = draw(st.lists(st.sampled_from(_STR_LITERALS),
                                   min_size=1, max_size=3))
            vals = ", ".join(f"'{v}'" for v in values)
        else:
            values = draw(st.lists(st.integers(-5, 5),
                                   min_size=1, max_size=3))
            vals = ", ".join(str(v) for v in values)
            return f"(x {negated}IN ({vals}))"
        return f"(s {negated}IN ({vals}))"
    if kind == "null":
        negated = "NOT " if draw(st.booleans()) else ""
        return f"(y IS {negated}NULL)"
    if kind == "between":
        lo = draw(st.integers(-30, 0))
        hi = draw(st.integers(0, 30))
        col = draw(st.sampled_from(["x", "y", "id"]))
        negated = "NOT " if draw(st.booleans()) else ""
        return f"({col} {negated}BETWEEN {lo} AND {hi})"
    if kind in ("and", "or"):
        left = draw(bool_exprs(depth=depth - 1))
        right = draw(bool_exprs(depth=depth - 1))
        return f"({left} {kind.upper()} {right})"
    if kind == "not":
        return f"(NOT {draw(bool_exprs(depth=depth - 1))})"
    # strfn: UPPER/LOWER equality or a LENGTH bound
    if draw(st.booleans()):
        fn = draw(st.sampled_from(["UPPER", "LOWER"]))
        lit = draw(st.sampled_from(["ANT", "BEE", "cat", ""]))
        return f"({fn}(s) = '{lit}')"
    op = draw(st.sampled_from(["<", "=", ">"]))
    return f"(LENGTH(s) {op} {draw(st.integers(0, 3))})"


@st.composite
def num_exprs(draw, depth=2):
    """Randomized numeric SQL expression over the `tables()` schema."""
    choices = ["leaf"]
    if depth > 0:
        choices += ["binary", "builtin", "case", "cast", "neg"]
    kind = draw(st.sampled_from(choices))
    if kind == "leaf":
        return draw(st.sampled_from(_NUM_LEAVES))
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
        left = draw(num_exprs(depth=depth - 1))
        right = draw(num_exprs(depth=depth - 1))
        if op in ("/", "%"):
            # Keep denominators nonzero: the law is about expression
            # semantics, not warning behaviour on division by zero.
            right = f"(ABS({right}) + 1)"
        return f"({left} {op} {right})"
    if kind == "builtin":
        fn = draw(st.sampled_from(["ABS", "FLOOR", "CEIL", "ROUND", "ROUND1",
                                   "SIGMOID", "SQRTABS", "LEAST", "GREATEST"]))
        inner = draw(num_exprs(depth=depth - 1))
        if fn == "SQRTABS":
            return f"SQRT(ABS({inner}))"
        if fn == "ROUND1":
            return f"ROUND({inner}, 1)"
        if fn in ("LEAST", "GREATEST"):
            return f"{fn}({inner}, {draw(num_exprs(depth=depth - 1))})"
        return f"{fn}({inner})"
    if kind == "case":
        cond = draw(bool_exprs(depth=depth - 1))
        then = draw(num_exprs(depth=depth - 1))
        other = draw(num_exprs(depth=depth - 1))
        return f"(CASE WHEN {cond} THEN {then} ELSE {other} END)"
    if kind == "cast":
        target = draw(st.sampled_from(["INT", "FLOAT"]))
        return f"CAST({draw(num_exprs(depth=depth - 1))} AS {target})"
    return f"(-({draw(num_exprs(depth=depth - 1))}))"


def _assert_compiled_law(session, stmt):
    base = _snapshot(session.sql.query(stmt, extra_config=INTERP_CONFIG).run())
    for extra in KERNEL_CONFIGS:
        compiled = _snapshot(session.sql.query(stmt, extra_config=extra).run())
        _assert_bitwise(base, compiled, (stmt, tuple(sorted(extra.items()))))


@settings(**SETTINGS)
@given(data=tables(), num=num_exprs(), cond=bool_exprs())
def test_compiled_equals_interpreted(data, num, cond):
    """Vectorized expression kernels are bit-identical to the interpreter
    over randomized trees, serial and sharded (NaN NULLs, empty tables and
    single rows come from the `tables()` strategy)."""
    session = _register(data)
    stmt = f"SELECT id, {num} AS e0, s FROM t WHERE {cond}"
    _assert_compiled_law(session, stmt)


@settings(**SETTINGS)
@given(data=tables(), num=num_exprs(), cond=bool_exprs())
def test_pipeline_grouped_aggregate_law(data, num, cond):
    """The compiled ≡ interpreted law over whole-pipeline callables ending
    in a grouped aggregate (filter → project → GROUP BY). Int aggregates
    shard through exact-mergeable grouped partials; AVG over a float
    expression is non-mergeable and must keep the merge barrier — both
    sides of that plan-time split have to hold the law bit-for-bit."""
    session = _register(data)
    stmt = (f"SELECT s, COUNT(*) AS c, SUM(x + 1) AS sm, MIN({num}) AS mn, "
            f"AVG(y) AS av FROM t WHERE {cond} GROUP BY s")
    _assert_compiled_law(session, stmt)


@settings(**SETTINGS)
@given(data=tables(), cond=bool_exprs())
def test_compiled_equals_interpreted_char_codes(data, cond):
    """The same law when the string column is stored as a padded char-code
    matrix instead of sorted dictionary codes."""
    table = Table.from_dict("t", dict(data))
    columns = [col.to_char_codes() if col.name == "s" else col
               for col in table.columns]
    session = Session()
    session.sql.register_table(Table("t", columns))
    stmt = f"SELECT id, s FROM t WHERE {cond}"
    _assert_compiled_law(session, stmt)


@settings(**SETTINGS)
@given(
    values=st.lists(st.one_of(st.floats(-50, 50, width=32),
                              st.just(float("nan"))), max_size=40),
    cut=st.integers(0, 40),
    func=st.sampled_from(["MIN", "MAX", "COUNT"]),
)
def test_partial_merge_equals_whole_float(values, cut, func):
    """Floats: only order-insensitive aggregates are mergeable (and the
    planner must agree)."""
    data = np.asarray(values, dtype=np.float32)
    n = len(data)
    spec = _spec(func, None if func == "COUNT" else "float")
    assert spec_mergeable(spec)
    for bad in ("SUM", "AVG"):
        assert not spec_mergeable(_spec(bad, "float"))
    column = Column.from_values("v", data)
    whole = _global_agg_column(spec, None if spec.arg is None else column,
                               n, column.device)
    cut = min(cut, n)
    partials = [
        global_partial(spec, None if spec.arg is None
                       else column.slice_rows(0, cut), cut),
        global_partial(spec, None if spec.arg is None
                       else column.slice_rows(cut, n), n - cut),
    ]
    merged = merge_global_partials(spec, partials, column.device)
    a, b = whole.tensor.detach().data, merged.tensor.detach().data
    assert np.array_equal(a, b, equal_nan=True), (func, a, b)
