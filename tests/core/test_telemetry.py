"""Engine-wide telemetry: trace spans, EXPLAIN ANALYZE, the metrics
registry and the slow-query log (the PR 7 tentpole).

Covers the tentpole's cost contract (disabled path is a shared no-op
singleton), its correctness contract (EXPLAIN ANALYZE row counts match the
actual result cardinalities; spans never leak across concurrent queries),
and the registry's consistency contract (counters reconcile exactly under
a concurrent serving workload).
"""

import json
import re
import threading

import numpy as np
import pytest

from repro.core.scheduler import QueryScheduler
from repro.core.session import Session
from repro.core.telemetry import (NULL_SPAN, Histogram, MetricsRegistry,
                                  SlowQueryLog, annotate, count,
                                  current_trace, span)
from repro.sql import logical, nodes
from repro.sql.binder import Binder
from repro.sql.parser import parse

ROWS = 512
SHARD_CONFIG = {"shards": 4, "parallel_min_rows": 8}
FILTER_SQL = "SELECT k, v FROM t WHERE v > 0.0"


def _numeric_session(rows: int = ROWS) -> Session:
    session = Session()
    rng = np.random.default_rng(7)
    session.sql.register_dict(
        {"k": np.arange(rows, dtype=np.int64) % 8,
         "v": rng.normal(size=rows).astype(np.float32)},
        "t",
    )
    return session


def _plan_text(result) -> str:
    return "\n".join(str(line) for line in np.asarray(result.column("plan")))


def _run_threads(n, target):
    errors = []

    def wrapped(i):
        try:
            target(i)
        except BaseException as exc:   # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "worker thread deadlocked"
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE through the SQL front end
# ---------------------------------------------------------------------------
class TestExplainParseBind:
    def test_parse_explain(self):
        stmt = parse("EXPLAIN SELECT k FROM t WHERE v > 0")
        assert isinstance(stmt, nodes.ExplainStmt)
        assert stmt.analyze is False
        assert stmt.sql == "SELECT k FROM t WHERE v > 0"
        assert isinstance(stmt.statement, nodes.SelectStmt)

    def test_parse_explain_analyze(self):
        stmt = parse("explain analyze SELECT COUNT(*) FROM t;")
        assert isinstance(stmt, nodes.ExplainStmt)
        assert stmt.analyze is True
        assert stmt.sql == "SELECT COUNT(*) FROM t"   # semicolon stripped

    def test_explain_is_soft_keyword(self):
        # A column named "explain" still parses as a plain identifier.
        stmt = parse("SELECT explain FROM t")
        assert isinstance(stmt, nodes.SelectStmt)

    def test_bind_wraps_inner_plan(self, session):
        session.sql.register_dict({"k": np.arange(4, dtype=np.int64)}, "t")
        bound = Binder(session.catalog, session.functions).bind(
            parse("EXPLAIN ANALYZE SELECT k FROM t"))
        assert isinstance(bound, logical.ExplainPlan)
        assert bound.analyze is True
        assert bound.sql == "SELECT k FROM t"
        assert [name for name, _ in bound.schema] == ["plan"]
        assert not isinstance(bound.input, logical.ExplainPlan)

    def test_plain_explain_renders_without_executing(self):
        session = _numeric_session(rows=32)
        text = _plan_text(session.sql.query(f"EXPLAIN {FILTER_SQL}").run())
        assert text.startswith(f"EXPLAIN {FILTER_SQL}")
        assert "Scan" in text
        assert "time=" not in text        # no measurements: nothing executed
        assert "rows_out=" not in text


class TestExplainAnalyze:
    def test_report_matches_actual_cardinalities(self):
        """Acceptance gate: on a sharded, kernel-compiled, cache-warm
        statement the report shows per-operator rows/time, per-shard
        timings, the kernel path and plan-cache attribution — and the
        reported row counts equal the actual result cardinalities."""
        session = _numeric_session()
        explain = session.sql.query(f"EXPLAIN ANALYZE {FILTER_SQL}",
                                    extra_config=SHARD_CONFIG)

        first = _plan_text(explain.run())
        assert "plan_cache=miss" in first
        direct = session.sql.query(FILTER_SQL, extra_config=SHARD_CONFIG).run()
        warm = _plan_text(explain.run())     # inner plan now cached
        assert "plan_cache=hit" in warm

        assert warm.startswith(f"EXPLAIN ANALYZE {FILTER_SQL}")
        assert re.search(r"total: \d+\.\d{3}ms  device=cpu", warm)
        assert re.search(r"compile: \d+\.\d{3}ms", warm)

        # Every operator line carries measured time; the root's rows_out is
        # the true result cardinality.
        op_lines = [ln for ln in warm.split("\n")
                    if re.search(r"\[.*time=\d+\.\d{3}ms", ln)]
        assert op_lines, warm
        root_rows = re.search(r"rows_out=(\d+)", op_lines[0])
        assert root_rows and int(root_rows.group(1)) == len(direct)

        # Sharded execution detail: one line per shard with its own timing
        # and row count, summing to the base table.
        shard_rows = [int(m.group(1)) for m in
                      re.finditer(r"\+ shard \d+: time=\d+\.\d{3}ms .*?rows=(\d+)",
                                  warm)]
        assert len(shard_rows) == SHARD_CONFIG["shards"]
        assert sum(shard_rows) == ROWS
        assert "+ stitch:" in warm
        assert "path=kernel" in warm         # compiled kernel, not fallback

        trace = explain.last_trace()
        assert trace is not None
        assert trace.result_rows == len(direct)

    def test_chrome_trace_export(self, tmp_path):
        session = _numeric_session(rows=64)
        query = session.sql.query(FILTER_SQL,
                                  extra_config={"telemetry": True})
        query.run()
        trace = query.last_trace()
        path = trace.dump_chrome(str(tmp_path / "trace.json"))
        payload = json.loads(open(path).read())
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        # Compile happened before the trace (at .query() time), so the
        # events cover the run: the root query span plus its operators.
        assert {"query", "operator"} <= {e["cat"] for e in events}
        assert payload["otherData"]["statement"] == FILTER_SQL


# ---------------------------------------------------------------------------
# Span mechanics: disabled path, nesting, isolation
# ---------------------------------------------------------------------------
class TestSpans:
    def test_disabled_path_is_shared_noop(self):
        assert current_trace() is None
        sp = span("operator", node=1)
        assert sp is NULL_SPAN and span("other") is sp
        assert not sp
        with sp as inner:
            inner.set(rows_out=3)
            inner.bump(hits=1)
        annotate(anything=1)               # no open span: silently dropped
        count(hits=1)

    def test_untraced_run_records_no_trace(self):
        session = _numeric_session(rows=32)
        query = session.sql.query(FILTER_SQL)
        query.run()
        assert query.last_trace() is None  # telemetry off by default

    def test_shard_spans_nest_under_their_operator(self):
        session = _numeric_session()
        config = dict(SHARD_CONFIG, telemetry=True)
        query = session.sql.query(FILTER_SQL, extra_config=config)
        query.run()
        trace = query.last_trace()
        shards = trace.find("shard")
        assert len(shards) == SHARD_CONFIG["shards"]
        for shard in shards:
            # shard task (helper thread) -> barrier -> the sharded operator
            assert shard.parent.name == "shard_barrier"
            assert shard.parent.parent.name == "operator"
        assert trace.find("stitch")
        # Shard tasks ran on pool threads, yet attached to this trace.
        threads = {s.thread for s in shards}
        assert threads, "shard spans lost their thread idents"

    def test_traces_stay_isolated_across_threads(self):
        """Two threads tracing different statements concurrently: each
        trace holds exactly the spans of its own query."""
        session = _numeric_session()
        statements = ["SELECT COUNT(*) FROM t WHERE v > 0",
                      "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY k"]
        queries = [session.sql.query(s, extra_config={"telemetry": True})
                   for s in statements]
        baselines = []
        for q in queries:                   # serial baseline span counts
            q.run()
            baselines.append(len(q.last_trace().find("operator")))

        def work(i):
            for _ in range(25):
                queries[i].run()
                trace = queries[i].last_trace()
                assert trace.root.attrs["statement"] == statements[i]
                assert len(trace.find("operator")) == baselines[i]

        _run_threads(2, work)

    def test_traced_serving_under_scheduler(self):
        """serve(workers=4) with telemetry on: every query still returns
        the right result and the engine survives concurrent tracing."""
        session = _numeric_session()
        statements = ["SELECT COUNT(*) FROM t WHERE v > 0",
                      "SELECT SUM(v) FROM t",
                      "SELECT COUNT(*) FROM t"] * 4
        expected = [session.sql.query(s).run().scalar() for s in statements]
        served = session.serve(statements, workers=4,
                               extra_config={"telemetry": True})
        assert [r.scalar() for r in served] == expected


# ---------------------------------------------------------------------------
# Metrics: histograms, registry, scheduler reconciliation
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_merge_is_exact_for_equal_bounds(self):
        bounds = [1.0, 2.0, 4.0, 8.0]
        a, b, all_ = (Histogram(n, bounds=bounds) for n in ("a", "b", "all"))
        left, right = [0.5, 1.5, 3.0], [5.0, 9.0, 0.25]
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        for v in left + right:
            all_.observe(v)
        a.merge(b)
        assert a.snapshot() == all_.snapshot()

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram("a", bounds=[1.0, 2.0]).merge(Histogram("b"))

    def test_quantiles_are_monotone_and_bounded(self):
        h = Histogram("lat")
        rng = np.random.default_rng(3)
        for v in rng.lognormal(mean=-6.0, sigma=1.5, size=500):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 500
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] \
            <= snap["max"]

    def test_empty_snapshot(self):
        assert Histogram("x").snapshot() == {"count": 0, "sum": 0.0}
        assert Histogram("x").quantile(0.5) == 0.0

    def test_concurrent_observes_are_exact(self):
        h = Histogram("lat")
        per_thread, threads = 500, 8

        def work(i):
            for j in range(per_thread):
                h.observe(((i + j) % 10 + 1) * 1e-3)

        _run_threads(threads, work)
        snap = h.snapshot()
        assert snap["count"] == per_thread * threads
        assert snap["sum"] == pytest.approx(
            sum(((i + j) % 10 + 1) * 1e-3
                for i in range(threads) for j in range(per_thread)))


class TestMetricsRegistry:
    def test_get_or_create_and_snapshot_layout(self):
        reg = MetricsRegistry()
        assert reg.counter("a.n") is reg.counter("a.n")
        reg.counter("a.n").inc(3)
        reg.gauge("a.g").set(2.5)
        reg.histogram("a.h").observe(0.01)
        reg.register_provider("comp", lambda: {"hits": 7})
        reg.register_provider("dead", lambda: 1 / 0)   # must not break
        snap = reg.snapshot()
        assert snap["a.n"] == 3 and snap["a.g"] == 2.5
        assert snap["comp.hits"] == 7
        assert snap["a.h"]["count"] == 1
        assert not any(k.startswith("dead.") for k in snap)

    def test_session_snapshot_namespaces(self):
        session = _numeric_session(rows=32)
        session.sql.query(FILTER_SQL).run()
        snap = session.metrics.snapshot()
        for key in ("plan_cache.hits", "plan_cache.misses",
                    "plan_cache.evictions", "tensor_cache.hits",
                    "tensor_cache.size", "shard_pool.workers",
                    "indexes.size", "slow_log.observed"):
            assert key in snap, key
        assert snap["query.latency_seconds"]["count"] == 1

    def test_scheduler_counters_reconcile_exactly(self):
        """Concurrency stress: after a served workload, executed +
        coalesced == submitted, and the registry's counters/histograms
        agree with the scheduler's own stats."""
        session = _numeric_session()
        statements = ["SELECT COUNT(*) FROM t WHERE v > 0",
                      "SELECT SUM(v) FROM t",
                      "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k",
                      "SELECT COUNT(*) FROM t"] * 8
        scheduler = QueryScheduler(session, workers=4)
        results = scheduler.map(statements)
        stats = scheduler.stats
        scheduler.shutdown()
        assert len(results) == len(statements)

        snap = session.metrics.snapshot()
        assert stats["executed"] + stats["coalesced"] == len(statements)
        assert snap["scheduler.executed"] == stats["executed"]
        assert snap.get("scheduler.coalesced", 0) == stats["coalesced"]
        # Every dequeued job (leader or coalesced) observed its queue wait.
        assert snap["scheduler.queue_wait_seconds"]["count"] == len(statements)
        # Only leaders actually ran, and each run recorded one latency.
        assert snap["query.latency_seconds"]["count"] == stats["executed"]

    def test_reset_clears_metrics(self):
        session = _numeric_session(rows=32)
        session.sql.query("SELECT COUNT(*) FROM t").run()
        assert session.metrics.snapshot()["query.latency_seconds"]["count"] == 1
        session.reset()
        snap = session.metrics.snapshot()
        assert snap.get("query.latency_seconds", {"count": 0})["count"] == 0


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------
class TestSlowQueryLog:
    def test_threshold_knob_and_trace_summary(self):
        session = _numeric_session(rows=64)
        session.sql.query(
            "SELECT SUM(v) FROM t",
            extra_config={"slow_query_seconds": 0.0, "telemetry": True},
        ).run()
        entry = session.slow_log.last()
        assert entry["statement"] == "SELECT SUM(v) FROM t"
        assert entry["seconds"] >= 0.0
        assert entry["trace_summary"]["top_operators"]

        # Default threshold (1s): a fast query is observed but not logged.
        before = len(session.slow_log)
        session.sql.query("SELECT COUNT(*) FROM t").run()
        assert len(session.slow_log) == before
        stats = session.slow_log.stats()
        assert stats["observed"] >= 2 and stats["logged"] == before

    def test_ring_buffer_retains_most_recent(self):
        log = SlowQueryLog(capacity=4, threshold_seconds=0.0)
        for i in range(10):
            assert log.observe(f"q{i}", seconds=0.5)
        assert len(log) == 4
        assert [e["statement"] for e in log.entries()] == \
            ["q6", "q7", "q8", "q9"]
        assert log.stats()["logged"] == 10 and log.stats()["retained"] == 4
