"""Targeted tests for the expression-kernel compiler (TQP-style codegen).

Covers the contracts the differential harness cannot pin down one by one:

* the char-code LIKE kernel against a ground-truth SQL LIKE oracle,
  including the newline behaviour the old regex lowering (no ``DOTALL``)
  got wrong, wildcards, and regex metacharacters in patterns;
* plan-time fallback — unsupported expression shapes compile to the plain
  interpreted operators (no ``Compiled*`` in the plan) with equal results;
* runtime fallback — a kernel raising :class:`KernelFallback` mid-query
  silently re-runs the interpreted operator, bit-identically;
* ``compile_exprs`` enters the plan-cache fingerprint, so flipping it can
  never serve a plan compiled under the other mode;
* the session memo for ``encode_text`` (satellite of the kernel work);
* adaptive ``parallel_min_rows="auto"``: per-row cost EMA, power-of-two
  quantization, and resolution *before* the plan-cache key is built.
"""

import re

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.errors import ExecutionError
from repro.core.kernels import strings as string_kernels
from repro.core.kernels.compiler import (
    FilterKernel,
    KernelFallback,
    ProjectKernel,
)
from repro.core.partition import ShardPool
from repro.core.session import Session
from repro.storage.column import Column
from repro.tcr import nn
from repro.tcr.tensor import Tensor


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _assert_equal_results(a, b, context=""):
    assert list(a) == list(b), context
    for name in a:
        av, bv = a[name], b[name]
        assert av.dtype == bv.dtype, (context, name, av.dtype, bv.dtype)
        if av.dtype.kind == "f":
            assert np.array_equal(av, bv, equal_nan=True), (context, name)
        else:
            assert np.array_equal(av, bv), (context, name)


# ----------------------------------------------------------------------
# LIKE: char-code kernel vs. ground truth
# ----------------------------------------------------------------------
LIKE_CORPUS = [
    "", "a", "ant", "bee", "a%t", "a_t", "a\nb", "ab\ncd", "\n",
    "A.b", "a*b", "[ant]", "(a)", "a+b", "a\\b", "aa", "ant bee", "tt",
]
LIKE_PATTERNS = [
    "%", "_", "", "a%", "%t", "a_t", "__", "%%", "a%_t", "%a%t%",
    "%\n%", "_\n_", "a.b", "a*b", "[%]", "(a)", "a+b", "a\\b", "%.%",
]


def _like_oracle(value: str, pattern: str) -> bool:
    """SQL LIKE ground truth: % and _ match ANY character, newlines
    included; everything else is a literal."""
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern)
    return re.fullmatch(regex, value, re.DOTALL) is not None


class TestLikeKernel:
    def _column(self):
        return Column.from_values(
            "s", np.asarray(LIKE_CORPUS, dtype=object))

    @pytest.mark.parametrize("pattern", LIKE_PATTERNS)
    def test_matrix_kernel_matches_oracle(self, pattern):
        column = self._column()
        codes = np.asarray(column.tensor.detach().data)
        mask = string_kernels.like_mask(column.encoding, codes, pattern)
        expected = np.asarray(
            [_like_oracle(v, pattern) for v in LIKE_CORPUS])
        assert np.array_equal(mask, expected), pattern

    def test_wildcards_match_newlines_unlike_old_regex(self):
        """Regression: the old lowering compiled % -> ".*" and _ -> "."
        without re.DOTALL, so wildcards silently refused to cross
        newlines. SQL LIKE has no such rule."""
        assert re.fullmatch(".*", "a\nb") is None          # the old bug
        column = self._column()
        codes = np.asarray(column.tensor.detach().data)
        mask = string_kernels.like_mask(column.encoding, codes, "%")
        assert mask.all()
        under = string_kernels.like_mask(column.encoding, codes, "_\n_")
        assert under[LIKE_CORPUS.index("a\nb")]
        assert not under[LIKE_CORPUS.index("ant")]

    @pytest.mark.parametrize("pattern", LIKE_PATTERNS)
    def test_sql_like_matches_oracle_both_engines(self, pattern):
        if "\\" in pattern or "\n" in pattern:
            pytest.skip("not expressible as a plain SQL literal here")
        session = Session()
        session.sql.register_dict(
            {"id": np.arange(len(LIKE_CORPUS), dtype=np.int64),
             "s": np.asarray(LIKE_CORPUS, dtype=object)}, "t")
        expected = [i for i, v in enumerate(LIKE_CORPUS)
                    if _like_oracle(v, pattern)]
        stmt = f"SELECT id FROM t WHERE s LIKE '{pattern}'"
        for extra in ({"compile_exprs": False}, {"compile_exprs": True}):
            got = session.sql.query(stmt, extra_config=extra).run()
            assert got.column("id").tolist() == expected, (pattern, extra)


# ----------------------------------------------------------------------
# Fallback contracts
# ----------------------------------------------------------------------
def _numbers_session(n=32):
    session = Session()
    session.sql.register_dict({
        "id": np.arange(n, dtype=np.int64),
        "x": (np.arange(n, dtype=np.int64) * 7) % 11 - 5,
        "s": np.asarray([("ant", "bee", "cat")[i % 3] for i in range(n)],
                        dtype=object),
    }, "t")
    return session


class TestFallbacks:
    def test_compiled_operators_appear_in_plan(self):
        session = _numbers_session()
        query = session.sql.query(
            "SELECT id, x + 1 AS v FROM t WHERE x > 0",
            extra_config={"compile_exprs": True})
        assert "Compiled" in query.explain()
        off = session.sql.query(
            "SELECT id, x + 1 AS v FROM t WHERE x > 0",
            extra_config={"compile_exprs": False})
        assert "Compiled" not in off.explain()

    def test_plan_time_fallback_on_unsupported_projection(self):
        """SUBSTR with a non-constant start has no kernel lowering (the
        kernel folds bounds at plan time): the planner must keep the
        interpreted operator rather than emit a broken kernel. The
        engine-wide contract (interpreter included) is constant bounds, so
        both paths surface the same ExecutionError at run time."""
        session = _numbers_session()
        stmt = ("SELECT id, SUBSTR(s, 1 + x % 2, 2) AS sx FROM t "
                "WHERE x > 0")
        compiled = session.sql.query(stmt,
                                     extra_config={"compile_exprs": True})
        # The operator producing `sx` stays interpreted; inner pruning
        # projections without the substring may still compile.
        sx_ops = [line for line in compiled.explain().splitlines()
                  if "sx" in line and "(" in line]
        assert sx_ops and all("Compiled" not in line for line in sx_ops), \
            compiled.explain()
        for extra in ({"compile_exprs": True}, {"compile_exprs": False}):
            with pytest.raises(ExecutionError, match="constant"):
                session.sql.query(stmt, extra_config=extra).run()

    def test_cast_to_string_now_compiles(self):
        """CAST to STRING gained a kernel lowering (PR 8): it compiles and
        stays bit-identical with the interpreter."""
        session = _numbers_session()
        stmt = "SELECT id, CAST(x AS STRING) AS sx FROM t WHERE x > 0"
        compiled = session.sql.query(stmt,
                                     extra_config={"compile_exprs": True})
        assert "Compiled" in compiled.explain()
        base = session.sql.query(stmt, extra_config={"compile_exprs": False})
        _assert_equal_results(_snapshot(base.run()),
                              _snapshot(compiled.run()), stmt)

    def test_cast_to_string_now_compiles(self):
        """CAST to STRING gained a kernel lowering (PR 8): it compiles and
        stays bit-identical with the interpreter."""
        session = _numbers_session()
        stmt = "SELECT id, CAST(x AS STRING) AS sx FROM t WHERE x > 0"
        compiled = session.sql.query(stmt,
                                     extra_config={"compile_exprs": True})
        assert "Compiled" in compiled.explain()
        base = session.sql.query(stmt, extra_config={"compile_exprs": False})
        _assert_equal_results(_snapshot(base.run()),
                              _snapshot(compiled.run()), stmt)

    def test_runtime_filter_fallback(self, monkeypatch):
        """A KernelFallback raised while the query runs re-executes the
        interpreted operator — same bits, no error."""
        session = _numbers_session()
        stmt = "SELECT id, x * 2 AS v FROM t WHERE x > 0 AND s = 'ant'"
        expected = _snapshot(session.sql.query(
            stmt, extra_config={"compile_exprs": False}).run())
        query = session.sql.query(stmt, extra_config={"compile_exprs": True})
        assert "Compiled" in query.explain()

        def boom(self, evaluator):
            raise KernelFallback("forced by test")

        monkeypatch.setattr(FilterKernel, "mask", boom)
        _assert_equal_results(expected, _snapshot(query.run()), stmt)

    def test_runtime_project_fallback(self, monkeypatch):
        session = _numbers_session()
        stmt = "SELECT id, x * 2 AS v FROM t WHERE x > 0"
        expected = _snapshot(session.sql.query(
            stmt, extra_config={"compile_exprs": False}).run())
        query = session.sql.query(stmt, extra_config={"compile_exprs": True})

        def boom(self, evaluator):
            raise KernelFallback("forced by test")

        monkeypatch.setattr(ProjectKernel, "columns", boom)
        _assert_equal_results(expected, _snapshot(query.run()), stmt)


# ----------------------------------------------------------------------
# Plan-cache interaction
# ----------------------------------------------------------------------
class TestPlanCacheFingerprint:
    def test_compile_exprs_flips_cache_key(self):
        session = _numbers_session()
        stmt = "SELECT id FROM t WHERE x > 0"
        q_on = session.compile_query(stmt,
                                     extra_config={"compile_exprs": True})
        q_off = session.compile_query(stmt,
                                      extra_config={"compile_exprs": False})
        assert q_on is not q_off
        assert "Compiled" in q_on.explain()
        assert "Compiled" not in q_off.explain()
        # Both plans are cached under distinct keys and re-served.
        assert session.compile_query(
            stmt, extra_config={"compile_exprs": True}) is q_on
        assert session.compile_query(
            stmt, extra_config={"compile_exprs": False}) is q_off

    def test_fingerprint_differs(self):
        on = QueryConfig({"compile_exprs": True})
        off = QueryConfig({"compile_exprs": False})
        assert on.fingerprint() != off.fingerprint()


# ----------------------------------------------------------------------
# encode_text session memo (satellite)
# ----------------------------------------------------------------------
class TestEncodeTextMemo:
    def _session(self):
        session = Session()
        calls = []

        class TextTower(nn.Module):
            def encode_text(self, texts):
                calls.append(tuple(texts))
                out = np.asarray([[float(len(t)), 1.0] for t in texts],
                                 dtype=np.float32)
                return Tensor(out)

        model = TextTower()
        session.sql.register_dict(
            {"emb": np.ones((6, 2), dtype=np.float32)}, "docs")

        @session.udf("float", name="txt_score", modules=[model])
        def txt_score(query: str, emb: Tensor) -> Tensor:
            txt = model.encode_text([query])
            from repro.tcr import ops
            return ops.matmul(emb, ops.reshape(txt, (-1, 1))).reshape(-1)

        return session, model, calls

    def test_repeated_queries_encode_once(self):
        session, model, calls = self._session()
        stmt = "SELECT txt_score('hello', emb) AS s FROM docs"
        first = session.sql.query(stmt).run().column("s")
        second = session.sql.query(stmt).run().column("s")
        assert calls == [("hello",)]      # second run served from the memo
        np.testing.assert_array_equal(first, second)

    def test_distinct_texts_miss(self):
        session, model, calls = self._session()
        session.sql.query("SELECT txt_score('aa', emb) AS s FROM docs").run()
        session.sql.query("SELECT txt_score('bb', emb) AS s FROM docs").run()
        assert calls == [("aa",), ("bb",)]

    def test_cache_disabled_bypasses_memo(self):
        session, model, calls = self._session()
        stmt = "SELECT txt_score('hello', emb) AS s FROM docs"
        off = {"tensor_cache": False}
        session.sql.query(stmt, extra_config=off).run()
        first = len(calls)
        assert first >= 1 and set(calls) == {("hello",)}
        session.sql.query(stmt, extra_config=off).run()
        # No active cache, no memo: the second run re-encodes everything.
        assert len(calls) == 2 * first

    def test_wrapper_installs_once(self):
        session, model, calls = self._session()
        assert getattr(model.encode_text, "__tdp_encoder_orig__", None) \
            is not None
        # Re-registering a UDF over the same module must not double-wrap.
        before = model.encode_text

        @session.udf("float", name="txt_score2", modules=[model])
        def txt_score2(query: str, emb: Tensor) -> Tensor:
            from repro.tcr import ops
            txt = model.encode_text([query])
            return ops.matmul(emb, ops.reshape(txt, (-1, 1))).reshape(-1)

        assert model.encode_text is before


# ----------------------------------------------------------------------
# Adaptive parallel_min_rows (satellite)
# ----------------------------------------------------------------------
class TestAdaptiveMinRows:
    def test_config_accepts_auto(self):
        config = QueryConfig({"parallel_min_rows": "auto"})
        assert config.adaptive_min_rows
        assert config.parallel_min_rows == 64     # static default until resolved
        resolved = config.with_resolved_min_rows(128)
        assert not resolved.adaptive_min_rows
        assert resolved.parallel_min_rows == 128
        assert resolved.fingerprint() != config.fingerprint()

    def test_pool_quantizes_to_power_of_two(self):
        pool = ShardPool()
        assert pool.adaptive_min_rows() == 64     # no observations: default
        # Expensive rows: break-even at one row still floors at 16.
        pool.observe_pipeline(10, 10 * ShardPool.DISPATCH_COST_S)
        assert pool.adaptive_min_rows() == 16
        # Cheap rows: raw break-even 2e5 rows clamps at 65536.
        pool = ShardPool()
        for _ in range(64):
            pool.observe_pipeline(1_000_000, 1e-3)
        assert pool.adaptive_min_rows() == 65536
        # Mid-range cost lands on the enclosing power of two.
        pool = ShardPool()
        for _ in range(64):
            pool.observe_pipeline(100, 100 * ShardPool.DISPATCH_COST_S / 48)
        assert pool.adaptive_min_rows() == 64

    def test_observation_guards(self):
        pool = ShardPool()
        pool.observe_pipeline(0, 1.0)
        pool.observe_pipeline(10, 0.0)
        assert pool.adaptive_min_rows() == 64     # garbage ignored

    def test_auto_resolves_before_cache_key(self):
        """Plans compiled under different observed thresholds must cache
        separately — the resolved value enters the fingerprint."""
        session = _numbers_session()
        stmt = "SELECT id FROM t WHERE x > 0"
        extra = {"parallel_min_rows": "auto", "shards": 2}
        q1 = session.compile_query(stmt, extra_config=extra)
        assert session.compile_query(stmt, extra_config=extra) is q1
        # Drive the EMA far enough that "auto" resolves to a new bucket.
        for _ in range(64):
            session.shard_pool.observe_pipeline(1_000_000, 1e-3)
        assert session.shard_pool.adaptive_min_rows() != 64
        q2 = session.compile_query(stmt, extra_config=extra)
        assert q2 is not q1
