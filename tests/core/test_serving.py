"""The serving front door: async surface, admission control, fairness,
priority/SLO dequeue, and the asyncio HTTP/JSON server (ROADMAP item 3)."""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.core.scheduler import InferenceBatcher, QueryScheduler
from repro.core.server import TdpServer
from repro.core.session import Session
from repro.core.telemetry import Ewma
from repro.errors import QueryDeadlineExceeded, ServerOverloaded
from repro.tcr.tensor import Tensor


def _numeric_session(rows: int = 64) -> Session:
    session = Session()
    rng = np.random.default_rng(7)
    session.sql.register_dict(
        {"k": np.arange(rows, dtype=np.int64) % 8,
         "v": rng.normal(size=rows).astype(np.float32)},
        "t",
    )
    return session


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _register_gate(session, name="gate"):
    """A UDF that blocks until the returned event is set — the test's way
    of pinning scheduler workers so a queue builds up deterministically."""
    release = threading.Event()

    @session.udf("float", name=name, deterministic=False)
    def gate(v: Tensor) -> Tensor:
        assert release.wait(timeout=30), "gate never released"
        return v

    return release


STATEMENTS = [
    "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY k",
    "SELECT COUNT(*) FROM t WHERE v > 0",
    "SELECT k, v FROM t WHERE k < 3 ORDER BY v DESC LIMIT 5",
    "SELECT MAX(v) FROM t",
]


class TestAsyncSurface:
    def test_aquery_matches_sync_query(self):
        session = _numeric_session()

        async def run():
            return [await session.aquery(s) for s in STATEMENTS]

        async_results = asyncio.run(run())
        sync_results = [session.sql.query(s).run() for s in STATEMENTS]
        for a, b in zip(async_results, sync_results):
            sa, sb = _snapshot(a), _snapshot(b)
            assert list(sa) == list(sb)
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name])

    def test_concurrent_aquery_fan_in(self):
        """Many aquery coroutines in flight at once on one event loop all
        land, in order, with per-statement-correct results."""
        session = _numeric_session()
        expected = [session.sql.query(s).run() for s in STATEMENTS]

        async def run():
            return await session.aserve(STATEMENTS * 8)

        results = asyncio.run(run())
        assert len(results) == len(STATEMENTS) * 8
        for i, result in enumerate(results):
            sa = _snapshot(result)
            sb = _snapshot(expected[i % len(STATEMENTS)])
            assert list(sa) == list(sb)
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name])

    def test_aquery_does_not_block_the_loop(self):
        """While a slow statement runs on the pool, the event loop keeps
        ticking (the bridge must never run the query on the loop thread)."""
        session = _numeric_session()

        @session.udf("float", name="naptime", deterministic=False)
        def naptime(v: Tensor) -> Tensor:
            time.sleep(0.2)
            return v

        ticks = []

        async def ticker():
            for _ in range(10):
                ticks.append(time.monotonic())
                await asyncio.sleep(0.01)

        async def run():
            query = session.aquery("SELECT SUM(naptime(v)) FROM t")
            result, _ = await asyncio.gather(query, ticker())
            return result

        result = asyncio.run(run())
        assert len(result) == 1
        assert len(ticks) == 10
        # The loop ticked during the 200ms sleep: gaps stay ~10ms, not one
        # 200ms stall.
        gaps = np.diff(ticks)
        assert float(np.max(gaps)) < 0.15


class TestAdmissionControl:
    def test_queue_depth_cap_sheds_with_reject(self):
        session = _numeric_session()
        release = _register_gate(session)
        scheduler = QueryScheduler(session, workers=1, max_queue_depth=2,
                                   coalesce=False)
        try:
            blocker = scheduler.submit("SELECT SUM(gate(v)) FROM t")
            time.sleep(0.05)          # let the worker pick the blocker up
            queued = [scheduler.submit(s) for s in STATEMENTS[:2]]
            with pytest.raises(ServerOverloaded) as excinfo:
                scheduler.submit(STATEMENTS[2])
            assert excinfo.value.reason == "queue_full"
            release.set()
            for f in [blocker, *queued]:
                f.result(timeout=30)
            stats = scheduler.stats
            assert stats["shed"] == 1
            assert stats["admitted"] == 3
            assert session.metrics.snapshot()["scheduler.shed"] == 1
        finally:
            release.set()
            scheduler.shutdown()

    def test_shed_policy_oldest_displaces_queued_request(self):
        session = _numeric_session()
        release = _register_gate(session)
        scheduler = QueryScheduler(session, workers=1, max_queue_depth=1,
                                   shed_policy="oldest", coalesce=False)
        try:
            blocker = scheduler.submit("SELECT SUM(gate(v)) FROM t")
            time.sleep(0.05)
            victim = scheduler.submit(STATEMENTS[0])
            newer = scheduler.submit(STATEMENTS[1])
            with pytest.raises(ServerOverloaded) as excinfo:
                victim.result(timeout=5)
            assert excinfo.value.reason == "displaced"
            release.set()
            assert newer.result(timeout=30) is not None
            blocker.result(timeout=30)
        finally:
            release.set()
            scheduler.shutdown()

    def test_deadline_lapsed_in_queue_is_dropped(self):
        session = _numeric_session()
        release = _register_gate(session)
        scheduler = QueryScheduler(session, workers=1, coalesce=False)
        try:
            blocker = scheduler.submit("SELECT SUM(gate(v)) FROM t")
            time.sleep(0.05)
            doomed = scheduler.submit(STATEMENTS[0],
                                      extra_config={"deadline": 0.01})
            time.sleep(0.1)           # let the budget lapse while queued
            release.set()
            with pytest.raises(QueryDeadlineExceeded):
                doomed.result(timeout=30)
            blocker.result(timeout=30)
            assert scheduler.stats["deadline_missed"] == 1
            assert session.metrics.snapshot()["scheduler.deadline_missed"] == 1
        finally:
            release.set()
            scheduler.shutdown()

    def test_priority_request_overtakes_bulk_backlog(self):
        session = _numeric_session()
        release = _register_gate(session)
        scheduler = QueryScheduler(session, workers=1, coalesce=False)
        order = []
        try:
            blocker = scheduler.submit("SELECT SUM(gate(v)) FROM t")
            time.sleep(0.05)
            bulk = []
            for i in range(4):
                f = scheduler.submit(STATEMENTS[i % len(STATEMENTS)])
                f.add_done_callback(
                    lambda _f, i=i: order.append(("bulk", i)))
                bulk.append(f)
            urgent = scheduler.submit(STATEMENTS[0],
                                      extra_config={"priority": 5})
            urgent.add_done_callback(lambda _f: order.append(("urgent", 0)))
            release.set()
            for f in [blocker, urgent, *bulk]:
                f.result(timeout=30)
            # The priority-5 request was submitted last but dequeued first.
            assert order[0] == ("urgent", 0)
        finally:
            release.set()
            scheduler.shutdown()

    def test_round_robin_fairness_under_greedy_client(self):
        """One greedy client's backlog cannot starve another client: the
        polite client's lone request dequeues after at most one greedy
        statement, not after all of them."""
        session = _numeric_session()
        release = _register_gate(session)
        scheduler = QueryScheduler(session, workers=1, coalesce=False)
        order = []
        try:
            blocker = scheduler.submit("SELECT SUM(gate(v)) FROM t",
                                       client="greedy")
            time.sleep(0.05)
            greedy = []
            for i in range(8):
                f = scheduler.submit(STATEMENTS[i % len(STATEMENTS)],
                                     client="greedy")
                f.add_done_callback(
                    lambda _f, i=i: order.append(("greedy", i)))
                greedy.append(f)
            polite = scheduler.submit(STATEMENTS[0], client="polite")
            polite.add_done_callback(lambda _f: order.append(("polite", 0)))
            release.set()
            for f in [blocker, polite, *greedy]:
                f.result(timeout=30)
            polite_pos = order.index(("polite", 0))
            assert polite_pos <= 1, order
        finally:
            release.set()
            scheduler.shutdown()

    def test_serving_knob_validation(self):
        from repro.core.config import QueryConfig
        with pytest.raises(ValueError):
            QueryConfig({"shed_policy": "coinflip"}).shed_policy
        with pytest.raises(ValueError):
            QueryConfig({"max_queue_depth": 0}).max_queue_depth
        with pytest.raises(ValueError):
            QueryConfig({"priority": "high"}).priority
        with pytest.raises(ValueError):
            QueryConfig({"deadline": -1}).deadline
        with pytest.raises(ValueError):
            QueryConfig({"batch_window": 5.0}).batch_window
        config = QueryConfig({"priority": 3, "deadline": 0.5,
                              "batch_window": "auto",
                              "scheduler_workers": 2})
        assert config.priority == 3
        assert config.deadline == 0.5
        assert config.batch_window == "auto"
        assert config.scheduler_workers == 2
        # Serving knobs enter the fingerprint like every other knob.
        assert QueryConfig().fingerprint() != config.fingerprint()


class TestAdaptiveBatchWindow:
    def test_ewma_converges_toward_samples(self):
        ewma = Ewma("x", alpha=0.5)
        assert ewma.observe(1.0) == 1.0
        for _ in range(20):
            ewma.observe(3.0)
        assert 2.9 < ewma.value <= 3.0
        assert ewma.count == 21

    def test_auto_window_follows_arrival_rate(self):
        from repro.core import scheduler as sched
        batcher = InferenceBatcher(window="auto")
        assert batcher.auto_window
        assert batcher.window == sched.AUTO_WINDOW_SEED
        # Simulate a fast convoy: ~0.1ms inter-arrival gaps.
        batcher._last_arrival = None
        now = time.monotonic()
        for i in range(12):
            batcher._last_arrival = now - 1e-4 if i else None
            batcher._observe_arrival()
        assert sched.AUTO_WINDOW_MIN <= batcher.window < sched.AUTO_WINDOW_SEED
        stats = batcher.stats
        assert stats["auto_window"] is True
        assert stats["window_seconds"] == batcher.window

    def test_idle_gaps_do_not_pollute_the_window(self):
        from repro.core import scheduler as sched
        batcher = InferenceBatcher(window="auto")
        now = time.monotonic()
        for _ in range(8):
            batcher._last_arrival = now - 5.0    # long idle stretch
            batcher._observe_arrival()
        assert batcher.window == sched.AUTO_WINDOW_SEED

    def test_fixed_window_still_supported(self):
        batcher = InferenceBatcher(window=0.05)
        assert not batcher.auto_window
        assert batcher.window == 0.05

    def test_window_visible_in_session_metrics(self):
        session = _numeric_session()
        batcher = InferenceBatcher(window="auto", session=session)
        now = time.monotonic()
        for _ in range(8):
            batcher._last_arrival = now - 1e-4
            batcher._observe_arrival()
        snap = session.metrics.snapshot()
        assert snap["batcher.window_seconds"] == batcher.window


async def _http(port, method, path, body=None, client=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\nhost: t\r\n"
            f"content-length: {len(payload)}\r\n")
    if client:
        head += f"x-tdp-client: {client}\r\n"
    head += "connection: close\r\n\r\n"
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split()[1])
    return status, json.loads(body_blob)


class TestHttpServer:
    def test_query_round_trip_over_real_socket(self):
        session = _numeric_session()

        async def run():
            server = TdpServer(session, port=0, workers=2)
            await server.start()
            try:
                status, payload = await _http(
                    server.port, "POST", "/query",
                    {"statement": STATEMENTS[0]}, client="c1")
                assert status == 200
                expected = session.sql.query(STATEMENTS[0]).run()
                assert payload["rows"] == len(expected)
                np.testing.assert_allclose(
                    payload["columns"]["s"],
                    np.asarray(expected.column("s")), rtol=1e-6)

                status, health = await _http(server.port, "GET", "/health")
                assert status == 200 and health["status"] == "ok"

                status, metrics = await _http(server.port, "GET", "/metrics")
                assert status == 200
                assert metrics["scheduler.admitted"] >= 1
            finally:
                await server.stop()

        asyncio.run(run())

    def test_submit_then_poll_result(self):
        session = _numeric_session()

        async def run():
            server = TdpServer(session, port=0, workers=2)
            await server.start()
            try:
                status, accepted = await _http(
                    server.port, "POST", "/submit",
                    {"statement": "SELECT COUNT(*) FROM t"}, client="c1")
                assert status == 202
                qid = accepted["query_id"]
                for _ in range(100):
                    status, result = await _http(
                        server.port, "GET", f"/result/{qid}", client="c1")
                    if result.get("status") == "done":
                        break
                    await asyncio.sleep(0.02)
                assert status == 200 and result["status"] == "done"
                assert result["columns"]["COUNT(*)"] == [64]
                # Results deliver once; ids are scoped per client.
                status, again = await _http(
                    server.port, "GET", f"/result/{qid}", client="c1")
                assert status == 404
                status, other = await _http(
                    server.port, "GET", f"/result/{qid}", client="c2")
                assert status == 404
            finally:
                await server.stop()

        asyncio.run(run())

    def test_explain_endpoint(self):
        session = _numeric_session()

        async def run():
            server = TdpServer(session, port=0, workers=1)
            await server.start()
            try:
                status, payload = await _http(
                    server.port, "POST", "/explain",
                    {"statement": STATEMENTS[0]})
                assert status == 200
                assert any("EXPLAIN" in line for line in payload["plan"])
                assert len(payload["plan"]) > 1
            finally:
                await server.stop()

        asyncio.run(run())

    def test_overload_returns_typed_503(self):
        session = _numeric_session()
        release = _register_gate(session)

        async def run():
            server = TdpServer(session, port=0, workers=1, max_queue_depth=1)
            await server.start()
            try:
                blocker = asyncio.create_task(_http(
                    server.port, "POST", "/query",
                    {"statement": "SELECT SUM(gate(v)) FROM t"}, client="c1"))
                await asyncio.sleep(0.1)   # worker now pinned on the gate
                filler = asyncio.create_task(_http(
                    server.port, "POST", "/query",
                    {"statement": STATEMENTS[0]}, client="c1"))
                await asyncio.sleep(0.05)  # queue now holds one request
                status, payload = await _http(
                    server.port, "POST", "/query",
                    {"statement": STATEMENTS[1]}, client="c2")
                assert status == 503
                assert payload["error"]["type"] == "ServerOverloaded"
                assert payload["error"]["reason"] == "queue_full"
                release.set()
                status, _ = await blocker
                assert status == 200
                status, _ = await filler
                assert status == 200
            finally:
                release.set()
                await server.stop()

        asyncio.run(run())

    def test_malformed_requests_get_400_not_a_crash(self):
        session = _numeric_session()

        async def run():
            server = TdpServer(session, port=0, workers=1)
            await server.start()
            try:
                status, payload = await _http(
                    server.port, "POST", "/query", {"wrong": "shape"})
                assert status == 400
                status, payload = await _http(
                    server.port, "POST", "/query",
                    {"statement": "SELECT nonsense FROM nowhere"})
                assert status == 400
                assert "error" in payload
                # The server survived both: a good request still works.
                status, _ = await _http(server.port, "POST", "/query",
                                        {"statement": STATEMENTS[1]})
                assert status == 200
            finally:
                await server.stop()

        asyncio.run(run())


class TestPendingResultHygiene:
    """Regression: undelivered /submit results must not accumulate forever
    for clients that never poll (per-client cap + TTL eviction)."""

    def test_pending_cap_returns_typed_503(self):
        session = _numeric_session()

        async def run():
            server = TdpServer(session, port=0, workers=2,
                               max_pending_per_client=3,
                               result_ttl_seconds=300.0)
            await server.start()
            try:
                for _ in range(3):
                    status, _ = await _http(
                        server.port, "POST", "/submit",
                        {"statement": "SELECT COUNT(*) FROM t"}, client="c1")
                    assert status == 202
                status, payload = await _http(
                    server.port, "POST", "/submit",
                    {"statement": "SELECT COUNT(*) FROM t"}, client="c1")
                assert status == 503
                assert payload["error"]["type"] == "ServerOverloaded"
                assert payload["error"]["reason"] == "too_many_pending"
                # The cap is per client: a polite client is unaffected.
                status, _ = await _http(
                    server.port, "POST", "/submit",
                    {"statement": "SELECT COUNT(*) FROM t"}, client="c2")
                assert status == 202
                # Draining one result frees the slot.
                for _ in range(100):
                    status, result = await _http(
                        server.port, "GET", "/result/1", client="c1")
                    if result.get("status") == "done":
                        break
                    await asyncio.sleep(0.02)
                assert status == 200
                status, _ = await _http(
                    server.port, "POST", "/submit",
                    {"statement": "SELECT COUNT(*) FROM t"}, client="c1")
                assert status == 202
            finally:
                await server.stop()

        asyncio.run(run())

    def test_abandoned_results_are_ttl_evicted(self):
        session = _numeric_session()

        async def run():
            server = TdpServer(session, port=0, workers=2,
                               result_ttl_seconds=0.05)
            await server.start()
            try:
                status, accepted = await _http(
                    server.port, "POST", "/submit",
                    {"statement": "SELECT COUNT(*) FROM t"}, client="c1")
                assert status == 202
                qid = accepted["query_id"]
                # Wait for the result to materialize, then abandon it.
                pending = server._clients["c1"].pending
                for _ in range(100):
                    if pending[qid][0].done():
                        break
                    await asyncio.sleep(0.02)
                await asyncio.sleep(0.1)   # let the TTL lapse
                status, payload = await _http(
                    server.port, "GET", f"/result/{qid}", client="c1")
                assert status == 404
                assert server.results_evicted == 1
                assert qid not in pending
                status, health = await _http(server.port, "GET", "/health")
                assert status == 200 and health["results_evicted"] == 1
            finally:
                await server.stop()

        asyncio.run(run())
