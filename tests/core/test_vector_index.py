"""Vector-index subsystem: DDL, lifecycle, planning and ANN/exact parity."""

import numpy as np
import pytest

from repro.errors import BindError, CatalogError
from repro.core.index import IVFFlatIndex
from repro.core.session import Session
from repro.tcr import nn, ops
from repro.tcr.tensor import Tensor


def _unit(rows: np.ndarray) -> np.ndarray:
    return rows / np.linalg.norm(rows, axis=-1, keepdims=True)


class ToyTwoTower(nn.Module):
    """Minimal CLIP-shaped model: corpus rows are already embeddings and
    query texts look up fixed vectors, so tests need no training."""

    def __init__(self, vocab):
        super().__init__()
        self.vocab = {k: np.asarray(v, dtype=np.float32) for k, v in vocab.items()}

    def encode_image(self, images: Tensor) -> Tensor:
        return images

    def encode_text(self, texts) -> Tensor:
        return Tensor(np.stack([self.vocab[t] for t in texts]))

    def similarity(self, query: str, images: Tensor) -> Tensor:
        text = Tensor(self.vocab[query].reshape(-1, 1))
        return ops.matmul(images, text).reshape(-1)


@pytest.fixture
def vec_session(rng):
    """64 unit vectors in 8-d plus a similarity UDF over them."""
    session = Session()
    corpus = _unit(rng.normal(size=(64, 8))).astype(np.float32)
    vocab = {"q0": corpus[0], "q1": corpus[17], "probe": _unit(rng.normal(size=8))}
    model = ToyTwoTower(vocab)
    session.sql.register_dict(
        {"id": np.arange(64), "emb": corpus}, "vecs")

    @session.udf("float", name="vec_sim", modules=[model], ann="inner_product")
    def vec_sim(query: str, emb: Tensor) -> Tensor:
        return model.similarity(query, emb)

    return session, corpus, vocab


TOPK_SQL = ("SELECT id, vec_sim('{q}', emb) AS score FROM vecs "
            "ORDER BY score DESC LIMIT {k}")
EXACT = {"disable_rules": ("vector_index",)}


def _ids(result):
    return result.column("id").tolist()


class TestIndexDdl:
    def test_create_show_drop_roundtrip(self, vec_session):
        session, _, _ = vec_session
        status = session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=2)"
        ).run().column("status")[0]
        assert "vidx" in status
        shown = session.sql.query("SHOW INDEXES").run()
        assert _one(shown, "name") == "vidx"
        assert _one(shown, "table") == "vecs"
        assert _one(shown, "column") == "emb"
        assert _one(shown, "cells") == 4
        assert _one(shown, "status") == "unbuilt"
        session.sql.query("DROP INDEX vidx").run()
        assert len(session.sql.query("SHOW INDEXES").run()) == 0

    def test_duplicate_create_rejected(self, vec_session):
        session, _, _ = vec_session
        session.sql.query("CREATE VECTOR INDEX vidx ON vecs(emb)").run()
        with pytest.raises(CatalogError):
            session.sql.query("CREATE VECTOR INDEX vidx ON vecs(emb)").run()

    def test_drop_unknown_needs_if_exists(self, vec_session):
        session, _, _ = vec_session
        with pytest.raises(CatalogError):
            session.sql.query("DROP INDEX ghost").run()
        status = session.sql.query("DROP INDEX IF EXISTS ghost").run()
        assert "skipped" in status.column("status")[0]

    def test_bind_validation(self, vec_session):
        session, _, _ = vec_session
        with pytest.raises(BindError):
            session.sql.query("CREATE VECTOR INDEX i ON nosuch(emb)").run()
        with pytest.raises(BindError):
            session.sql.query("CREATE VECTOR INDEX i ON vecs(nocol)").run()
        with pytest.raises(BindError):
            session.sql.query("CREATE VECTOR INDEX i ON vecs(emb) WITH (bogus=3)").run()

    def test_python_native_path(self, vec_session):
        session, _, _ = vec_session
        entry = session.create_vector_index("vidx", "vecs", "emb", cells=4)
        assert entry.nprobe == 1        # default: cells // 4
        assert session.drop_index("vidx")


class TestIndexedPlanning:
    def test_plan_shows_index_scan(self, vec_session):
        session, _, _ = vec_session
        session.sql.query("CREATE VECTOR INDEX vidx ON vecs(emb)").run()
        query = session.sql.query(TOPK_SQL.format(q="q0", k=5))
        assert "TopKSimilarity" in query.plan_text
        assert "IndexScan(vidx" in query.explain()
        exact = session.sql.query(TOPK_SQL.format(q="q0", k=5), extra_config=EXACT)
        assert "IndexScan" not in exact.explain()

    def test_plan_cache_invalidated_by_index_ddl(self, vec_session):
        session, _, _ = vec_session
        statement = TOPK_SQL.format(q="q0", k=5)
        before = session.sql.query(statement)
        assert "IndexScan" not in before.explain()
        session.sql.query("CREATE VECTOR INDEX vidx ON vecs(emb)").run()
        after = session.sql.query(statement)
        assert after is not before
        assert "IndexScan" in after.explain()
        session.sql.query("DROP INDEX vidx").run()
        dropped = session.sql.query(statement)
        assert "IndexScan" not in dropped.explain()

    def test_trainable_queries_never_use_index(self, vec_session):
        session, _, _ = vec_session
        session.sql.query("CREATE VECTOR INDEX vidx ON vecs(emb)").run()
        query = session.sql.query(TOPK_SQL.format(q="q0", k=5),
                                  extra_config={"trainable": True})
        assert "IndexScan" not in query.explain()

    def test_undeclared_udf_is_not_accelerated(self, vec_session):
        """Only UDFs declaring ann= are eligible: an undeclared function
        (e.g. a dissimilarity) must keep the exact plan even though it
        closes over a two-tower model."""
        session, _, vocab = vec_session
        model = ToyTwoTower(vocab)

        @session.udf("float", name="vec_dissim", modules=[model])
        def vec_dissim(query: str, emb: Tensor) -> Tensor:
            return ops.neg(model.similarity(query, emb))

        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=1)").run()
        sql = ("SELECT id, vec_dissim('probe', emb) AS score FROM vecs "
               "ORDER BY score DESC LIMIT 5")
        query = session.sql.query(sql)
        assert "IndexScan" not in query.explain()
        want = session.sql.query(sql, extra_config=EXACT).run()
        assert _ids(query.run()) == _ids(want)

    def test_foreign_model_udf_keeps_exact_plan(self, vec_session, rng):
        """An index bound to one embedding space refuses queries embedded in
        another (no rebuild thrash, no wrong-space ranking)."""
        session, _, vocab = vec_session
        other_vocab = {k: _unit(rng.normal(size=8)) for k in vocab}
        other = ToyTwoTower(other_vocab)

        @session.udf("float", name="other_sim", modules=[other], ann="inner_product")
        def other_sim(query: str, emb: Tensor) -> Tensor:
            return other.similarity(query, emb)

        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        # Bind the entry to vec_sim's model first.
        session.sql.query(TOPK_SQL.format(q="q0", k=5)).run()
        entry = session.indexes.lookup("vidx")
        assert entry.build_count == 1
        sql = ("SELECT id, other_sim('probe', emb) AS score FROM vecs "
               "ORDER BY score DESC LIMIT 5")
        query = session.sql.query(sql)
        assert "IndexScan" not in query.explain()    # compile-time gate
        want = session.sql.query(sql, extra_config=EXACT).run()
        assert _ids(query.run()) == _ids(want)
        assert entry.build_count == 1                # and no rebuild thrash


class TestIndexedExecution:
    def test_full_probe_matches_exact(self, vec_session):
        """recall == 1.0 when nprobe == cells: every cell is scanned."""
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        for q in ("q0", "q1", "probe"):
            got = session.sql.query(TOPK_SQL.format(q=q, k=10)).run()
            want = session.sql.query(TOPK_SQL.format(q=q, k=10),
                                     extra_config=EXACT).run()
            assert _ids(got) == _ids(want)
            assert np.allclose(got.column("score"), want.column("score"))

    def test_residual_predicate_post_filters(self, vec_session):
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        sql = ("SELECT id FROM vecs WHERE id < 20 "
               "ORDER BY vec_sim('probe', emb) DESC LIMIT 5")
        got = session.sql.query(sql).run()
        want = session.sql.query(sql, extra_config=EXACT).run()
        assert _ids(got) == _ids(want)
        assert all(i < 20 for i in _ids(got))

    def test_staleness_rebuild_after_reregister(self, vec_session, rng):
        session, corpus, vocab = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        statement = TOPK_SQL.format(q="probe", k=3)
        session.sql.query(statement).run()
        entry = session.indexes.lookup("vidx")
        assert entry.build_count == 1
        assert session.indexes.status(entry) == "ready"

        # Append a row that is the probe vector itself: after re-registration
        # the index must rebuild and surface the new best match.
        extended = np.concatenate([corpus, vocab["probe"][None, :]])
        version = session.catalog.version
        session.sql.register_dict(
            {"id": np.arange(65), "emb": extended.astype(np.float32)}, "vecs")
        assert session.catalog.version > version
        assert session.indexes.status(entry) == "stale"
        result = session.sql.query(statement).run()
        assert _ids(result)[0] == 64
        assert entry.build_count == 2
        assert session.indexes.status(entry) == "ready"

    def test_sparse_cells_escalate_to_full_k(self, vec_session):
        """nprobe=1 over many small cells still returns k rows (escalation)."""
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=16, nprobe=1)").run()
        got = session.sql.query(TOPK_SQL.format(q="probe", k=10)).run()
        assert len(got) == 10

    def test_dropped_index_falls_back_to_exact(self, vec_session):
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        query = session.sql.query(TOPK_SQL.format(q="q1", k=5))
        assert "IndexScan" in query.explain()
        want = _ids(query.run())
        session.sql.query("DROP INDEX vidx").run()
        # The held compiled plan still runs: IndexScanExec degrades to the
        # exact Filter/TopK/Project pipeline.
        assert _ids(query.run()) == want

    def test_cosine_metric_normalizes_unnormalized_embeddings(self, rng):
        """ann='cosine' over a model emitting unnormalized vectors: the
        index must L2-normalize, or large-norm rows would outrank truly
        closer ones even at a full probe."""
        session = Session()
        directions = _unit(rng.normal(size=(32, 6)))
        norms = rng.uniform(0.1, 10.0, size=(32, 1))
        corpus = (directions * norms).astype(np.float32)   # wildly varied norms
        session.sql.register_dict({"id": np.arange(32), "emb": corpus}, "vecs")
        vocab = {"probe": _unit(rng.normal(size=6)).astype(np.float32)}
        model = ToyTwoTower(vocab)

        @session.udf("float", name="cos_sim", modules=[model], ann="cosine")
        def cos_sim(query: str, emb: Tensor) -> Tensor:
            q = vocab[query]
            data = emb.detach().data
            cos = (data @ q) / np.maximum(np.linalg.norm(data, axis=1), 1e-12)
            return Tensor(cos.astype(np.float32))

        session.sql.query(
            "CREATE VECTOR INDEX cidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        sql = ("SELECT id, cos_sim('probe', emb) AS score FROM vecs "
               "ORDER BY score DESC LIMIT 8")
        query = session.sql.query(sql)
        assert "IndexScan" in query.explain()
        got = query.run()
        want = session.sql.query(sql, extra_config=EXACT).run()
        assert _ids(got) == _ids(want)
        assert session.indexes.lookup("cidx").metric == "cosine"

    def test_python_create_validates_option_types(self, vec_session):
        session, _, _ = vec_session
        with pytest.raises(CatalogError):
            session.create_vector_index("bad", "vecs", "emb", cells=16, nprobe=16 / 4)
        with pytest.raises(CatalogError):
            session.create_vector_index("bad", "vecs", "emb", cells="many")

    def test_raw_vector_column_search(self, vec_session):
        """Python-native search over a raw 2-D float column (no embedder)."""
        session, corpus, vocab = vec_session
        session.create_vector_index("raw", "vecs", "emb", cells=4, nprobe=4)
        query = vocab["probe"]
        ids, scores = session.indexes.search("raw", query, k=5)
        exact = np.argsort(-(corpus @ query))[:5]
        assert ids.tolist() == exact.tolist()
        assert np.all(np.diff(scores) <= 0)

    def test_recall_reasonable_with_partial_probe(self, vec_session):
        session, corpus, _ = vec_session
        session.create_vector_index("raw", "vecs", "emb", cells=8, nprobe=8)
        index = session.indexes.ensure_built(session.indexes.lookup("raw"))
        queries = _unit(np.random.default_rng(5).normal(size=(8, 8))).astype(np.float32)
        assert index.recall_at_k(queries, corpus, k=10, nprobe=8) == 1.0
        assert index.recall_at_k(queries, corpus, k=10, nprobe=4) >= 0.5


class TestKMeansReseeding:
    def test_clustered_corpus_keeps_cells_populated(self):
        """Empty cells reseed from far points, so tiny clusters get cells."""
        rng = np.random.default_rng(0)
        big = _unit(np.array([1.0, 0, 0]) + rng.normal(scale=0.01, size=(100, 3)))
        small = _unit(np.array([0, 1.0, 0]) + rng.normal(scale=0.01, size=(4, 3)))
        corpus = np.concatenate([big, small]).astype(np.float32)
        index = IVFFlatIndex(num_cells=6, seed=0).build(corpus)
        sizes = [len(ids) for ids in index._cell_ids]
        assert all(size > 0 for size in sizes)
        # The small cluster is recoverable with a single probe.
        ids, _ = index.search(np.array([0, 1.0, 0], dtype=np.float32), 4, nprobe=1)
        assert set(ids.tolist()) == {100, 101, 102, 103}


class TestNprobeHint:
    """Per-query probe-width override: extra_config={"nprobe": N}."""

    def test_hint_overrides_index_default(self, vec_session):
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=8, nprobe=1)").run()
        sql = TOPK_SQL.format(q="probe", k=10)
        hinted = session.sql.query(sql, extra_config={"nprobe": 8})
        assert "IndexScan" in hinted.explain()
        assert "nprobe=8 (hint)" in hinted.explain()
        default = session.sql.query(sql)
        assert "(hint)" not in default.explain()
        # Probing every cell is exact: hint results must match the exact plan.
        exact = session.sql.query(sql, extra_config=EXACT)
        assert _ids(hinted.run()) == _ids(exact.run())

    def test_hint_is_part_of_the_plan_cache_fingerprint(self, vec_session):
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=8, nprobe=1)").run()
        sql = TOPK_SQL.format(q="probe", k=5)
        plain = session.sql.query(sql)
        hinted = session.sql.query(sql, extra_config={"nprobe": 4})
        assert plain is not hinted
        assert session.sql.query(sql, extra_config={"nprobe": 4}) is hinted

    def test_hint_clamps_to_cell_count(self, vec_session):
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        sql = TOPK_SQL.format(q="q0", k=5)
        got = session.sql.query(sql, extra_config={"nprobe": 1000}).run()
        want = session.sql.query(sql, extra_config=EXACT).run()
        assert _ids(got) == _ids(want)

    def test_bad_hints_rejected(self, vec_session):
        session, _, _ = vec_session
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)").run()
        sql = TOPK_SQL.format(q="q0", k=5)
        with pytest.raises(ValueError, match="nprobe"):
            session.sql.query(sql, extra_config={"nprobe": 0})
        with pytest.raises(ValueError, match="nprobe"):
            session.sql.query(sql, extra_config={"nprobe": "wide"})


def _one(result, column):
    values = result.column(column)
    assert len(values) == 1
    return values[0]
