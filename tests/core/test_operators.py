"""Physical operators: equivalences, joins, batched UDF execution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tcr
from repro.core.operators import equi_join_indices
from repro.core.session import Session


def _group_query(session, impl):
    return session.spark.query(
        "SELECT k, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM data "
        "GROUP BY k ORDER BY k",
        extra_config={"groupby_impl": impl},
    ).run(toPandas=True)


class TestAggregateEquivalence:
    @given(st.lists(st.tuples(st.integers(0, 5),
                              st.floats(-100, 100, allow_nan=False)),
                    min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_hash_equals_sort(self, rows):
        session = Session()
        keys = np.asarray([r[0] for r in rows], dtype=np.int64)
        values = np.asarray([r[1] for r in rows], dtype=np.float32)
        session.sql.register_dict({"k": keys, "v": values}, "data")
        sort_result = _group_query(session, "sort")
        hash_result = _group_query(session, "hash")
        assert sort_result.equals(hash_result, atol=1e-3)

    @given(st.lists(st.sampled_from(["apple", "pear", "kiwi", "fig"]),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_string_group_counts_match_numpy(self, labels):
        session = Session()
        session.sql.register_dict(
            {"k": labels, "v": np.ones(len(labels), dtype=np.float32)}, "data")
        out = session.spark.query(
            "SELECT k, COUNT(*) FROM data GROUP BY k ORDER BY k"
        ).run(toPandas=True)
        uniques, counts = np.unique(np.asarray(labels, dtype=object),
                                    return_counts=True)
        assert out["k"].tolist() == uniques.tolist()
        assert out["COUNT(*)"].tolist() == counts.tolist()


class TestJoinIndices:
    def test_inner_basic(self):
        left = np.array([1, 2, 3])
        right = np.array([2, 2, 4])
        li, ri = equi_join_indices(left, right)
        assert li.tolist() == [1, 1]
        assert sorted(right[ri].tolist()) == [2, 2]

    def test_left_join_marks_unmatched(self):
        left = np.array([1, 9])
        right = np.array([1])
        li, ri = equi_join_indices(left, right, keep_unmatched_left=True)
        assert li.tolist() == [0, 1]
        assert ri.tolist() == [0, -1]

    def test_duplicates_both_sides(self):
        left = np.array([7, 7])
        right = np.array([7, 7, 7])
        li, ri = equi_join_indices(left, right)
        assert len(li) == 6

    def test_empty_sides(self):
        li, ri = equi_join_indices(np.array([], dtype=np.int64),
                                   np.array([1, 2]))
        assert len(li) == 0
        li, ri = equi_join_indices(np.array([1]), np.array([], dtype=np.int64))
        assert len(li) == 0

    @given(st.lists(st.integers(0, 8), max_size=30),
           st.lists(st.integers(0, 8), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_matches_nested_loop_reference(self, left, right):
        left_arr = np.asarray(left, dtype=np.int64)
        right_arr = np.asarray(right, dtype=np.int64)
        li, ri = equi_join_indices(left_arr, right_arr)
        got = sorted(zip(li.tolist(), ri.tolist()))
        want = sorted(
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv
        )
        assert got == want


class TestMultiKeyJoin:
    def test_two_key_join(self):
        session = Session()
        session.sql.register_dict(
            {"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [10.0, 20.0, 30.0]}, "l")
        session.sql.register_dict(
            {"a": [1, 2], "b": ["y", "x"], "w": [5.0, 6.0]}, "r")
        out = session.spark.query(
            "SELECT l.v, r.w FROM l JOIN r ON l.a = r.a AND l.b = r.b "
            "ORDER BY l.v"
        ).run(toPandas=True)
        assert out["v"].tolist() == [20.0, 30.0]
        assert out["w"].tolist() == [5.0, 6.0]


class TestDeviceBatchedUdf:
    def _run(self, device, n=40):
        session = Session()
        calls = []

        @session.udf("float", name="probe")
        def probe(x):
            calls.append(x.shape[0])
            return x * 2.0

        session.sql.register_dict(
            {"x": np.arange(n, dtype=np.float32)}, "t", device=device)
        out = session.spark.query("SELECT probe(x) AS y FROM t",
                                  device=device).run(toPandas=True)
        return out, calls

    def test_cpu_uses_micro_batches(self):
        out, calls = self._run("cpu")
        assert len(calls) > 1                       # chunked execution
        assert max(calls) <= tcr.CPU.profile.exec_batch_rows
        np.testing.assert_allclose(out["y"], np.arange(40) * 2.0)

    def test_cuda_uses_one_large_batch(self):
        out, calls = self._run("cuda")
        assert calls == [40]
        np.testing.assert_allclose(out["y"], np.arange(40) * 2.0)

    def test_results_identical_across_devices(self):
        cpu_out, _ = self._run("cpu")
        gpu_out, _ = self._run("cuda")
        assert cpu_out.equals(gpu_out)

    def test_training_mode_never_chunks(self):
        session = Session()
        model = tcr.nn.Linear(1, 1)
        calls = []

        @session.udf("float", name="scored", modules=[model])
        def scored(x):
            calls.append(x.shape[0])
            return model(x.reshape(-1, 1)).reshape(-1)

        session.sql.register_dict(
            {"x": np.arange(32, dtype=np.float32)}, "t")
        query = session.spark.query(
            "SELECT scored(x) AS y FROM t",
            extra_config={"trainable": True},
        )
        query.run()
        # Gradient taping requires the whole batch in one call.
        assert calls == [32]
