"""Inference-aware execution: the session tensor cache + expression CSE.

Covers the materialization-cache acceptance contract: repeated statements
skip inference, a UDF duplicated between SELECT and WHERE invokes its model
exactly once (CSE + subset gather), index builds and similarity queries
share corpus embeddings in both directions, and trainable / non-
deterministic / mutated-weight paths never serve stale results.
"""

import numpy as np

from repro.core.session import Session
from repro.core.tensor_cache import TensorCache, state_fingerprint
from repro.tcr import nn, ops
from repro.tcr.tensor import Tensor


def _register_numbers(session, n=8, device="cpu"):
    session.sql.register_dict(
        {"k": np.arange(n, dtype=np.int64),
         "x": np.arange(n, dtype=np.float32)}, "t", device=device)
    return n


def _counting_probe(session, factor=2.0):
    calls = []

    @session.udf("float", name="probe")
    def probe(x):
        calls.append(x.shape[0])
        return x * factor

    return calls


class TestUdfOutputCache:
    def test_repeated_statement_skips_inference(self, session):
        n = _register_numbers(session)
        calls = _counting_probe(session)
        sql = "SELECT probe(x) AS y FROM t"
        first = session.sql.query(sql).run(toPandas=True)
        cold_calls = sum(calls)
        assert cold_calls == n
        second = session.sql.query(sql).run(toPandas=True)
        assert sum(calls) == cold_calls          # no new model work
        assert first["y"].tolist() == second["y"].tolist()
        stats = session.tensor_cache.stats
        assert stats["hits"] >= 1
        assert stats["entries"] >= 1

    def test_udf_duplicated_select_where_single_pass(self):
        """The acceptance criterion: SELECT f(x) ... WHERE f(x) > c invokes
        the model exactly once (cuda profile: one batched invocation)."""
        session = Session()
        n = _register_numbers(session, n=40, device="cuda")
        calls = _counting_probe(session)
        out = session.sql.query(
            "SELECT probe(x) AS s FROM t WHERE probe(x) > 10",
            device="cuda").run(toPandas=True)
        assert calls == [n]                      # exactly one evaluation pass
        expected = np.arange(n, dtype=np.float32) * 2.0
        assert out["s"].tolist() == expected[expected > 10].tolist()

    def test_cse_within_select_list_without_cache(self, session):
        """Structural-hash CSE is per-pass and works with the cache off."""
        n = _register_numbers(session, n=40, device="cuda")
        calls = _counting_probe(session)
        out = session.sql.query(
            "SELECT probe(x) + 1 AS a, probe(x) * 2 AS b FROM t",
            device="cuda",
            extra_config={"tensor_cache": False}).run(toPandas=True)
        assert calls == [n]                      # shared subtree, one invoke
        np.testing.assert_allclose(out["a"], np.arange(n) * 2.0 + 1)
        np.testing.assert_allclose(out["b"], np.arange(n) * 4.0)

    def test_subset_after_filter_gathers_from_full_entry(self, session):
        n = _register_numbers(session)
        calls = _counting_probe(session)
        full = session.sql.query("SELECT probe(x) AS s FROM t").run(toPandas=True)
        assert sum(calls) == n
        filtered = session.sql.query(
            "SELECT probe(x) AS s FROM t WHERE k < 3").run(toPandas=True)
        assert sum(calls) == n                   # gathered, not recomputed
        assert filtered["s"].tolist() == full["s"].tolist()[:3]
        assert session.tensor_cache.stats["gather_hits"] >= 1

    def test_config_flag_disables_cache(self, session):
        n = _register_numbers(session)
        calls = _counting_probe(session)
        config = {"tensor_cache": False}
        session.sql.query("SELECT probe(x) AS y FROM t", extra_config=config).run()
        session.sql.query("SELECT probe(x) AS y FROM t", extra_config=config).run()
        assert sum(calls) == 2 * n

    def test_zero_budget_session_disables_cache(self):
        session = Session(tensor_cache_bytes=0)
        n = _register_numbers(session)
        calls = _counting_probe(session)
        session.sql.query("SELECT probe(x) AS y FROM t").run()
        session.sql.query("SELECT probe(x) AS y FROM t").run()
        assert sum(calls) == 2 * n
        assert len(session.tensor_cache) == 0


class TestCacheBypasses:
    def test_nondeterministic_udf_never_cached(self, session):
        _register_numbers(session, n=4, device="cuda")
        counter = [0.0]

        @session.udf("float", name="rnd", deterministic=False)
        def rnd(x):
            counter[0] += 1.0
            return x * 0 + counter[0]

        sql = "SELECT rnd(x) AS a, rnd(x) AS b FROM t"
        out = session.sql.query(sql, device="cuda").run(toPandas=True)
        # No CSE between the two references, and no cross-statement reuse.
        assert out["a"][0] != out["b"][0]
        out2 = session.sql.query(sql, device="cuda").run(toPandas=True)
        assert out2["a"][0] not in (out["a"][0], out["b"][0])
        assert session.tensor_cache.stats["hits"] == 0

    def test_trainable_queries_never_touch_cache(self, session):
        _register_numbers(session, n=8)
        model = nn.Linear(1, 1)
        calls = []

        @session.udf("float", name="scored", modules=[model])
        def scored(x):
            calls.append(x.shape[0])
            return model(x.reshape(-1, 1)).reshape(-1)

        query = session.sql.query("SELECT scored(x) AS y FROM t",
                                  extra_config={"trainable": True})
        query.run()
        query.run()
        assert sum(calls) == 16                  # both runs computed
        assert len(session.tensor_cache) == 0

    def test_in_place_weight_mutation_invalidates(self, session):
        _register_numbers(session, n=6)
        model = nn.Linear(1, 1)

        @session.udf("float", name="scored", modules=[model])
        def scored(x):
            return model(x.reshape(-1, 1)).reshape(-1)

        sql = "SELECT scored(x) AS y FROM t"
        before = session.sql.query(sql).run(toPandas=True)
        again = session.sql.query(sql).run(toPandas=True)
        assert before["y"].tolist() == again["y"].tolist()
        model.weight.data = model.weight.data * 2.0 + 1.0
        after = session.sql.query(sql).run(toPandas=True)
        expected = (np.arange(6, dtype=np.float32).reshape(-1, 1)
                    @ model.weight.data.T + model.bias.data).reshape(-1)
        np.testing.assert_allclose(after["y"], expected, rtol=1e-5)
        assert before["y"].tolist() != after["y"].tolist()


class TestInvalidation:
    def test_table_reregistration_invalidates(self, session):
        _register_numbers(session, n=4)
        _counting_probe(session)
        sql = "SELECT probe(x) AS y FROM t"
        first = session.sql.query(sql).run(toPandas=True)
        session.sql.register_dict(
            {"k": np.arange(4, dtype=np.int64),
             "x": np.arange(4, dtype=np.float32) + 100}, "t")
        second = session.sql.query(sql).run(toPandas=True)
        np.testing.assert_allclose(second["y"], (np.arange(4) + 100) * 2.0)
        assert first["y"].tolist() != second["y"].tolist()

    def test_udf_reregistration_invalidates(self, session):
        _register_numbers(session, n=4)

        @session.udf("float", name="f")
        def f_v1(x):
            return x * 2.0

        sql = "SELECT f(x) AS y FROM t"
        assert session.sql.query(sql).run(toPandas=True)["y"].tolist() == \
            [0.0, 2.0, 4.0, 6.0]

        @session.udf("float", name="f")
        def f_v2(x):
            return x * 3.0

        assert session.sql.query(sql).run(toPandas=True)["y"].tolist() == \
            [0.0, 3.0, 6.0, 9.0]


class TestEmbeddingSharing:
    """Query-time UDF evaluation and index builds share corpus encodes."""

    def _session(self, rng):
        session = Session()
        corpus = rng.normal(size=(64, 8)).astype(np.float32)
        corpus /= np.linalg.norm(corpus, axis=1, keepdims=True)
        vocab = {"q": corpus[3] + 0.01, "other": corpus[40]}
        encoded_rows = []

        class TwoTower(nn.Module):
            def encode_image(self, images: Tensor) -> Tensor:
                encoded_rows.append(images.shape[0])
                return images

            def encode_text(self, texts) -> Tensor:
                return Tensor(np.stack([vocab[t] for t in texts]))

        model = TwoTower()
        session.sql.register_dict(
            {"id": np.arange(64), "emb": corpus}, "vecs")

        @session.udf("float", name="vec_sim", modules=[model],
                     ann="inner_product")
        def vec_sim(query: str, emb: Tensor) -> Tensor:
            img = model.encode_image(emb)
            txt = model.encode_text([query])
            return ops.matmul(img, ops.reshape(txt, (-1, 1))).reshape(-1)

        return session, encoded_rows

    SQL = ("SELECT id, vec_sim('q', emb) AS score FROM vecs "
           "ORDER BY score DESC LIMIT 5")
    EXACT = {"disable_rules": ("vector_index",)}

    def test_index_build_after_query_reuses_embeddings(self, rng):
        session, encoded_rows = self._session(rng)
        exact = session.sql.query(self.SQL).run()
        assert sum(encoded_rows) == 64           # cold: corpus encoded once
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)"
        ).run()
        indexed = session.sql.query(self.SQL)
        assert "IndexScan" in indexed.explain()
        got = indexed.run()                      # triggers the lazy build
        assert sum(encoded_rows) == 64           # zero additional encodes
        assert got.column("id").tolist() == exact.column("id").tolist()
        np.testing.assert_array_equal(got.column("score"),
                                      exact.column("score"))

    def test_query_after_index_build_reuses_embeddings(self, rng):
        session, encoded_rows = self._session(rng)
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)"
        ).run()
        session.sql.query(self.SQL).run()        # builds: one corpus encode
        assert sum(encoded_rows) == 64
        session.sql.query(self.SQL, extra_config=self.EXACT).run()
        assert sum(encoded_rows) == 64           # exact scan reused the build

    def test_cache_disabled_query_also_disables_build_sharing(self, rng):
        """extra_config={"tensor_cache": False} covers the lazy index build
        a query triggers, not just its expression evaluation."""
        session, encoded_rows = self._session(rng)
        off = {"tensor_cache": False}
        session.sql.query(self.SQL, extra_config={**self.EXACT, **off}).run()
        assert sum(encoded_rows) == 64
        session.sql.query(
            "CREATE VECTOR INDEX vidx ON vecs(emb) WITH (cells=4, nprobe=4)"
        ).run()
        session.sql.query(self.SQL, extra_config=off).run()
        assert sum(encoded_rows) >= 128          # build re-encoded the corpus
        assert session.tensor_cache.stats["hits"] == 0

    def test_stale_tags_never_leak_into_other_udfs(self, session):
        """A model shared between a deterministic and a deterministic=False
        UDF must not serve (or capture) encoder entries for the latter."""
        corpus = np.arange(16, dtype=np.float32).reshape(8, 2)
        encoded_rows = []

        class Encoder(nn.Module):
            def encode_image(self, images):
                encoded_rows.append(images.shape[0])
                return images

            def encode_text(self, texts):
                return Tensor(np.ones((len(texts), 2), dtype=np.float32))

        model = Encoder()
        session.sql.register_dict({"emb": corpus}, "t")

        @session.udf("float", name="f_det", modules=[model])
        def f_det(emb):
            return ops.sum(model.encode_image(emb), dim=1)

        @session.udf("float", name="f_rand", modules=[model],
                     deterministic=False)
        def f_rand(emb):
            return ops.sum(model.encode_image(emb), dim=1)

        session.sql.query("SELECT f_det(emb) AS y FROM t").run()
        assert sum(encoded_rows) == 8
        session.sql.query("SELECT f_rand(emb) AS y FROM t").run()
        session.sql.query("SELECT f_rand(emb) AS y FROM t").run()
        assert sum(encoded_rows) == 24           # f_rand always re-encodes


class TestTensorCacheLru:
    def test_eviction_respects_byte_budget(self):
        cache = TensorCache(max_bytes=100)
        a = Tensor(np.zeros(10, dtype=np.float32))   # 40 bytes
        cache.put(("a",), a, a.data.nbytes)
        cache.put(("b",), a, a.data.nbytes)
        assert len(cache) == 2
        cache.put(("c",), a, a.data.nbytes)          # over budget: evict LRU
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache._touch(("a",)) is None          # oldest entry evicted
        assert cache._touch(("c",)) is not None

    def test_oversized_values_rejected(self):
        cache = TensorCache(max_bytes=16)
        big = Tensor(np.zeros(100, dtype=np.float32))
        cache.put(("big",), big, big.data.nbytes)
        assert len(cache) == 0

    def test_state_fingerprint_tracks_parameters(self):
        model = nn.Linear(2, 2)
        before = state_fingerprint([model])
        assert before == state_fingerprint([model])
        model.weight.data = model.weight.data + 1.0
        assert state_fingerprint([model]) != before
        assert state_fingerprint([object()]) == "stateless"
