"""Micro-batched UDF invocation (`expr_eval._invoke_batched`).

Direct coverage of the device-profile batching engine: chunk stitching
across ``exec_batch_rows`` boundaries, EncodedTensor argument slicing,
scalar broadcast arguments, and the grad-enabled bypass.
"""

import numpy as np

from repro.core.expr_eval import _invoke_batched
from repro.core.udf import UdfInfo, parse_output_schema
from repro.storage.column import Column
from repro.storage.encodings import DictionaryEncoding, EncodedTensor
from repro.tcr import nn
from repro.tcr.autograd import no_grad
from repro.tcr.device import as_device
from repro.tcr.tensor import Tensor

CPU = as_device("cpu")
CUDA = as_device("cuda")


def _info(func, schema="float", encoded_io=False, modules=None):
    return UdfInfo("f", func, parse_output_schema(schema), modules or [],
                   encoded_io=encoded_io)


class TestChunkStitching:
    def test_cpu_micro_batches_and_stitches_in_order(self):
        calls = []

        def f(x):
            calls.append(x.shape[0])
            return x + 1.0

        data = np.arange(7, dtype=np.float32)
        (col,) = _invoke_batched(_info(f), [Tensor(data)], 7, CPU)
        assert calls == [1] * 7
        np.testing.assert_allclose(col.tensor.data, data + 1.0)

    def test_cuda_stitches_across_batch_boundary(self):
        batch = CUDA.profile.exec_batch_rows
        n = 2 * batch + 3
        calls = []

        def f(x):
            calls.append(x.shape[0])
            return x * 2.0

        data = np.arange(n, dtype=np.float32)
        (col,) = _invoke_batched(_info(f), [Tensor(data, device="cuda")], n, CUDA)
        assert calls == [batch, batch, 3]
        np.testing.assert_allclose(col.tensor.data, data * 2.0)
        assert str(col.device) == "cuda:0"

    def test_multi_column_outputs_stitch_per_column(self):
        def f(x):
            return x + 1.0, x - 1.0

        data = np.arange(5, dtype=np.float32)
        a, b = _invoke_batched(_info(f, "A float, B float"), [Tensor(data)], 5, CPU)
        assert (a.name, b.name) == ("A", "B")
        np.testing.assert_allclose(a.tensor.data, data + 1.0)
        np.testing.assert_allclose(b.tensor.data, data - 1.0)


class TestEncodedTensorArgs:
    def test_encoded_chunks_keep_encoding_and_order(self):
        column = Column.from_values("s", np.array(["b", "a", "c", "a", "b"]))
        assert isinstance(column.encoding, DictionaryEncoding)
        seen = []

        def f(enc):
            assert isinstance(enc, EncodedTensor)
            assert isinstance(enc.encoding, DictionaryEncoding)
            seen.append(enc.num_rows)
            return enc.tensor

        (col,) = _invoke_batched(_info(f, "int", encoded_io=True),
                                 [column.encoded], 5, CPU)
        assert seen == [1] * 5
        np.testing.assert_array_equal(col.tensor.data,
                                      column.tensor.data)


class TestScalarBroadcastArgs:
    def test_scalar_args_pass_to_every_chunk(self):
        prefixes = []

        def f(prefix, x):
            prefixes.append(prefix)
            return x + float(len(prefix))

        data = np.arange(4, dtype=np.float32)
        (col,) = _invoke_batched(_info(f), ["abc", Tensor(data)], 4, CPU)
        assert prefixes == ["abc"] * 4
        np.testing.assert_allclose(col.tensor.data, data + 3.0)

    def test_short_tensor_args_are_not_sliced(self):
        # A tensor whose leading dim != num_rows is a broadcast constant.
        weights = Tensor(np.ones(2, dtype=np.float32))
        shapes = []

        def f(w, x):
            shapes.append(w.shape[0])
            return x * w.data[0]

        data = np.arange(5, dtype=np.float32)
        (col,) = _invoke_batched(_info(f), [weights, Tensor(data)], 5, CPU)
        assert shapes == [2] * 5
        np.testing.assert_allclose(col.tensor.data, data)


class TestGradBypass:
    def test_grad_enabled_runs_one_full_batch(self):
        model = nn.Linear(1, 1)
        calls = []

        def f(x):
            calls.append(x.shape[0])
            return model(x.reshape(-1, 1)).reshape(-1)

        data = np.arange(40, dtype=np.float32)
        _invoke_batched(_info(f, modules=[model]), [Tensor(data)], 40, CPU)
        assert calls == [40]                     # taping needs the whole batch

    def test_no_grad_restores_micro_batching(self):
        model = nn.Linear(1, 1)
        calls = []

        def f(x):
            calls.append(x.shape[0])
            return model(x.reshape(-1, 1)).reshape(-1)

        data = np.arange(6, dtype=np.float32)
        with no_grad():
            (col,) = _invoke_batched(_info(f, modules=[model]),
                                     [Tensor(data)], 6, CPU)
        assert calls == [1] * 6
        expected = (data.reshape(-1, 1) @ model.weight.data.T
                    + model.bias.data).reshape(-1)
        np.testing.assert_allclose(col.tensor.data, expected, rtol=1e-5)
