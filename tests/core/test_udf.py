"""UDF/TVF registration, schema parsing, module discovery, invocation."""

import numpy as np
import pytest

from repro import tcr
from repro.core.session import Session
from repro.core.udf import (
    FunctionRegistry,
    UdfInfo,
    collect_modules,
    parse_output_schema,
)
from repro.errors import UdfError
from repro.storage import types as dt
from repro.storage.encodings import PEEncoding
from repro.tcr import nn
from repro.tcr.tensor import Tensor


class TestSchemaParsing:
    def test_named_columns(self):
        schema = parse_output_schema("Digit float, Size float")
        assert schema == [("Digit", dt.FLOAT), ("Size", dt.FLOAT)]

    def test_bare_type(self):
        schema = parse_output_schema("float")
        assert schema == [("col0", dt.FLOAT)]

    def test_type_aliases(self):
        schema = parse_output_schema("a int, b double, c varchar, d boolean")
        assert [t for _, t in schema] == [dt.INT, dt.FLOAT, dt.STRING, dt.BOOL]

    def test_bad_schemas_rejected(self):
        with pytest.raises(UdfError):
            parse_output_schema("")
        with pytest.raises(UdfError):
            parse_output_schema("a b c")
        with pytest.raises(UdfError):
            parse_output_schema("x notatype")


class TestModuleDiscovery:
    def test_finds_globals(self):
        model = nn.Linear(2, 2)
        namespace = {"model": model}
        exec("def f(x):\n    return model(x)", namespace)
        found = collect_modules(namespace["f"])
        assert found == [model]

    def test_finds_closures(self):
        model = nn.Linear(2, 2)

        def make():
            inner_model = model

            def f(x):
                return inner_model(x)
            return f

        assert collect_modules(make()) == [model]

    def test_deduplicates(self):
        model = nn.Linear(2, 2)
        namespace = {"a": model, "b": model}
        exec("def f(x):\n    return a(b(x))", namespace)
        assert len(collect_modules(namespace["f"])) == 1

    def test_session_decorator_attaches_info(self):
        session = Session()
        model = nn.Linear(3, 2)

        @session.udf("float", modules=[model])
        def my_udf(x):
            return model(x)

        assert my_udf.udf_info.name == "my_udf"
        assert my_udf.udf_info.modules == [model]
        assert session.functions.lookup("MY_UDF") is my_udf.udf_info

    def test_auto_discovery_through_decorator(self):
        session = Session()
        model = nn.Linear(3, 2)

        @session.udf("float")
        def auto_udf(x):
            return model(x)

        assert auto_udf.udf_info.modules == [model]


class TestInvocation:
    def _info(self, func, schema="float"):
        return UdfInfo("f", func, parse_output_schema(schema), [])

    def test_tensor_output_wrapped(self):
        info = self._info(lambda x: x * 2)
        (col,) = info.invoke([tcr.tensor([1.0, 2.0])])
        assert col.decode().tolist() == [2.0, 4.0]

    def test_tuple_output_multi_column(self):
        info = self._info(lambda x: (x, x * 2), "A float, B float")
        cols = info.invoke([tcr.tensor([1.0])])
        assert [c.name for c in cols] == ["A", "B"]

    def test_pe_output_keeps_encoding(self):
        info = self._info(lambda x: PEEncoding.encode(x), "P float")
        (col,) = info.invoke([tcr.tensor([[1.0, 2.0]])])
        assert col.data_type.kind == "prob"

    def test_wrong_column_count_rejected(self):
        info = self._info(lambda x: (x, x), "A float")
        with pytest.raises(UdfError, match="returned 2 columns"):
            info.invoke([tcr.tensor([1.0])])

    def test_exception_wrapped_with_name(self):
        def boom(x):
            raise RuntimeError("inner failure")

        info = self._info(boom)
        with pytest.raises(UdfError, match="inner failure"):
            info.invoke([tcr.tensor([1.0])])

    def test_registry_replace_and_flag(self):
        registry = FunctionRegistry()
        info = UdfInfo("f", lambda: None, parse_output_schema("float"), [])
        registry.register(info)
        registry.register(info)                      # replace ok
        with pytest.raises(UdfError):
            registry.register(info, replace=False)

    def test_is_table_valued(self):
        single = UdfInfo("f", None, parse_output_schema("float"), [])
        multi = UdfInfo("g", None, parse_output_schema("a float, b int"), [])
        assert not single.is_table_valued
        assert multi.is_table_valued


class TestUdfInQueries:
    def test_scalar_udf_row_count_checked(self):
        session = Session()
        session.sql.register_dict({"x": [1.0, 2.0, 3.0]}, "t")

        @session.udf("float", name="broken")
        def broken(x):
            return x[0:0]          # drops rows regardless of batch size

        with pytest.raises(Exception, match="rows"):
            session.spark.query("SELECT broken(x) FROM t").run()

    def test_udf_receives_string_literal(self):
        session = Session()
        session.sql.register_dict({"x": [1.0, 2.0]}, "t")
        seen = {}

        @session.udf("float", name="capture")
        def capture(prefix, x):
            seen["prefix"] = prefix
            return x

        session.spark.query("SELECT capture('hello', x) FROM t").run()
        assert seen["prefix"] == "hello"

    def test_udf_receives_encoded_tensor_for_strings(self):
        session = Session()
        session.sql.register_dict({"s": ["a", "b"]}, "t")
        seen = {}

        @session.udf("int", name="strlen")
        def strlen(col):
            seen["type"] = type(col).__name__
            strings = col.decode()
            return Tensor(np.asarray([len(s) for s in strings], dtype=np.int64))

        session.spark.query("SELECT strlen(s) FROM t").run()
        assert seen["type"] == "EncodedTensor"

    def test_tvf_changing_cardinality(self):
        session = Session()
        session.sql.register_tensor(tcr.ones(2, 4), "blob")

        @session.udf("part float", name="explode")
        def explode(x):
            return x.reshape(-1)

        out = session.spark.query("SELECT part FROM explode(blob)").run(toPandas=True)
        assert len(out) == 8
