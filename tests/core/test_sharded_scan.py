"""Unit tests for the intra-query parallel execution subsystem (PR 5):
partition planning, the shard pool, plan lowering, knobs, and cache keys."""

import threading

import numpy as np
import pytest

from repro.core.config import QueryConfig
from repro.core.partition import ShardPool, plan_shards, stitch_relations
from repro.core.operators.base import Relation
from repro.core.session import Session
from repro.storage.table import Table
from repro.storage.column import Column


def _session(rows=400):
    session = Session()
    rng = np.random.default_rng(3)
    session.sql.register_dict(
        {"id": np.arange(rows, dtype=np.int64),
         "x": rng.integers(0, 50, rows).astype(np.int64),
         "y": rng.normal(size=rows).astype(np.float32),
         "s": np.array([f"w{i % 5}" for i in range(rows)], dtype=object)},
        "t",
    )
    return session


class TestPlanShards:
    def test_splits_into_contiguous_cover(self):
        bounds = plan_shards(100, 4, min_rows=2)
        assert bounds == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_min_rows_disables_splitting(self):
        assert plan_shards(100, 4, min_rows=200) == [(0, 100)]

    def test_alignment_rounds_boundaries(self):
        bounds = plan_shards(1000, 3, min_rows=2, align=64)
        assert all(start % 64 == 0 for start, _ in bounds)
        assert bounds[-1][1] == 1000
        covered = sum(stop - start for start, stop in bounds)
        assert covered == 1000

    def test_no_split_when_serial_would_single_batch(self):
        # n <= align: serial execution runs one un-split kernel.
        assert plan_shards(100, 4, min_rows=2, align=512) == [(0, 100)]

    def test_degenerate_inputs(self):
        assert plan_shards(0, 4, min_rows=0) == [(0, 0)]
        assert plan_shards(1, 4, min_rows=0) == [(0, 1)]
        assert len(plan_shards(3, 7, min_rows=0)) <= 3


class TestShardPool:
    def test_results_in_submission_order(self):
        pool = ShardPool(workers=2)
        results = pool.run([lambda i=i: i * i for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_exceptions_reraise_by_shard_order(self):
        pool = ShardPool(workers=2)

        def boom():
            raise ValueError("shard failed")

        with pytest.raises(ValueError, match="shard failed"):
            pool.run([lambda: 1, boom, lambda: 3])

    def test_submitter_helps_with_zero_workers(self):
        pool = ShardPool(workers=0)        # no helper threads at all
        assert pool.run([lambda i=i: i for i in range(5)]) == list(range(5))

    def test_concurrent_batches_interleave(self):
        pool = ShardPool(workers=2)
        out = []

        def submit(i):
            out.append(pool.run([lambda j=j: (i, j) for j in range(8)]))

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
        assert sorted(batch[0][0] for batch in out) == [0, 1, 2, 3]
        for batch in out:
            i = batch[0][0]
            assert batch == [(i, j) for j in range(8)]


class TestStitch:
    def test_full_coverage_restores_base_lineage(self):
        base = Column.from_values("v", np.arange(20, dtype=np.int64))
        pieces = [Relation(Table("t", [base.slice_rows(0, 12)])),
                  Relation(Table("t", [base.slice_rows(12, 20)]))]
        merged = stitch_relations(pieces, base_rows=20)
        token, rows = merged.table.columns[0].lineage
        assert rows is None                      # recognised as the full column
        assert np.array_equal(merged.table.columns[0].tensor.data,
                              base.tensor.data)

    def test_partial_coverage_keeps_row_lineage(self):
        base = Column.from_values("v", np.arange(20, dtype=np.int64))
        pieces = [Relation(Table("t", [base.slice_rows(0, 5)])),
                  Relation(Table("t", [base.slice_rows(12, 20)]))]
        merged = stitch_relations(pieces, base_rows=20)
        token, rows = merged.table.columns[0].lineage
        assert rows is not None
        assert np.array_equal(rows, np.concatenate(
            [np.arange(0, 5), np.arange(12, 20)]))


class TestLowering:
    def test_pipeline_prefix_becomes_sharded_scan(self):
        q = _session().sql.query(
            "SELECT id, x * 2 AS v FROM t WHERE x > 10",
            extra_config={"shards": 4})
        assert "ShardedScan(shards=4" in q.explain()

    def test_mergeable_global_aggregate_lowered_to_partials(self):
        q = _session().sql.query(
            "SELECT COUNT(*), MIN(x), MAX(x), SUM(x), AVG(x) FROM t "
            "WHERE x > 10", extra_config={"shards": 4})
        assert "ShardedAggregate(" in q.explain()

    def test_float_sum_takes_merge_barrier(self):
        # Float partial sums would reorder rounding: the aggregate stays
        # serial, only the pipeline below it shards.
        q = _session().sql.query(
            "SELECT SUM(y) FROM t WHERE x > 10", extra_config={"shards": 4})
        text = q.explain()
        assert "ShardedAggregate(" not in text
        assert "ShardedScan(" in text

    def test_group_by_lowered_to_grouped_partials(self):
        q = _session().sql.query(
            "SELECT s, COUNT(*) FROM t WHERE x > 10 GROUP BY s",
            extra_config={"shards": 4})
        assert "ShardedGroupedAggregate(" in q.explain()

    def test_float_sum_group_by_takes_merge_barrier(self):
        # Float partial sums would reorder rounding even per group: the
        # grouped aggregate stays serial, only the pipeline below it shards.
        q = _session().sql.query(
            "SELECT s, SUM(y) FROM t WHERE x > 10 GROUP BY s",
            extra_config={"shards": 4})
        text = q.explain()
        assert "ShardedGroupedAggregate(" not in text
        assert "ShardedScan(" in text

    def test_shards_1_and_trainable_stay_serial(self):
        session = _session()
        assert "Sharded" not in session.sql.query(
            "SELECT id FROM t WHERE x > 10").explain()
        assert "Sharded" not in session.sql.query(
            "SELECT SUM(y) FROM t WHERE x > 10",
            extra_config={"shards": 4, "trainable": True}).explain()

    def test_parallel_scan_off_disables_rewrite(self):
        assert "Sharded" not in _session().sql.query(
            "SELECT id FROM t WHERE x > 10",
            extra_config={"shards": 4, "parallel_scan": False}).explain()


class TestKnobs:
    def test_invalid_shards_rejected(self):
        for bad in (-1, 257, True, "four", 1.5):
            with pytest.raises(ValueError):
                QueryConfig({"shards": bad}).shards

    def test_invalid_min_rows_rejected(self):
        for bad in (-1, True, "many"):
            with pytest.raises(ValueError):
                QueryConfig({"parallel_min_rows": bad}).parallel_min_rows

    def test_knobs_fold_into_plan_cache_fingerprint(self):
        session = _session()
        stmt = "SELECT id FROM t WHERE x > 10"
        q1 = session.sql.query(stmt)
        q4 = session.sql.query(stmt, extra_config={"shards": 4})
        q1_again = session.sql.query(stmt)
        assert q1 is q1_again                  # cache hit for equal config
        assert q1 is not q4                    # shard count is in the key
        assert "ShardedScan" in q4.explain()
        assert "ShardedScan" not in q1.explain()


class TestReviewRegressions:
    def test_computed_string_columns_stitch(self):
        """Per-shard dictionary encodings (string builtins / literals)
        decode and re-encode at the stitch instead of failing."""
        session = _session()
        for stmt in ("SELECT UPPER(s) AS u FROM t WHERE x >= 0",
                     "SELECT 'tag' AS c, x FROM t WHERE x >= 0"):
            a = session.sql.query(stmt).run()
            b = session.sql.query(stmt, extra_config={
                "shards": 4, "parallel_min_rows": 2}).run()
            for name in a.column_names:
                assert np.array_equal(a.column(name), b.column(name)), (stmt, name)

    def test_post_filter_udf_declines_sharding_on_batching_device(self):
        """A UDF over a filtered stream batches over remnant lengths no
        alignment controls: on a row-batching device (cuda profile) the
        driver must fall back to serial execution, bitwise."""
        session = _session(rows=2000)
        from repro.tcr import nn
        from repro.tcr.tensor import Tensor
        lin = nn.Linear(1, 1)

        @session.udf("float", name="aff", modules=[lin])
        def aff(v: Tensor) -> Tensor:
            return lin(v.to(device="cpu").reshape(-1, 1)).reshape(-1)

        stmt = "SELECT id, aff(y) AS a FROM t WHERE y > 0"
        for device in ("cpu", "cuda"):
            a = session.sql.query(stmt, device=device).run()
            b = session.sql.query(stmt, device=device, extra_config={
                "shards": 3, "parallel_min_rows": 2}).run()
            for name in a.column_names:
                assert a.column(name).dtype == b.column(name).dtype
                assert np.array_equal(a.column(name), b.column(name)), (device, name)
        # A UDF over the *unfiltered* scan stays shardable on cuda too.
        pre = "SELECT id FROM t WHERE aff(y) > 0"
        a = session.sql.query(pre, device="cuda").run()
        b = session.sql.query(pre, device="cuda", extra_config={
            "shards": 3, "parallel_min_rows": 2}).run()
        assert np.array_equal(a.column("id"), b.column("id"))

    def test_rle_columns_share_one_materialized_base(self):
        """The shard driver materializes an RLE column once for the whole
        shard set: every shard slice records the same lineage base (cache
        keys unify), instead of one full decode per shard. The decoded copy
        is scoped to the shard set — Column itself never pins it."""
        from repro.core.operators.scan import shard_slices
        from repro.storage.encodings import RunLengthEncoding
        col = Column("r", RunLengthEncoding.encode(np.repeat(np.arange(8), 50)))
        table = Table("t", [col])
        bounds = [(0, 100), (100, 200), (200, 300), (300, 400)]
        tokens = {piece.columns[0].lineage[0]
                  for piece in shard_slices(table, bounds)}
        assert len(tokens) == 1
        assert col.materialize() is not col                 # still RLE itself

    def test_cuda_alignment_boundary_rounding(self):
        """align > 1 (cuda profile, exec_batch_rows=512): shard boundaries
        land on batch multiples for every shard count and odd row count,
        and pre-filter UDF pipelines stay bitwise identical with serial."""
        session = _session(rows=1300)
        from repro.tcr import nn
        from repro.tcr.tensor import Tensor
        lin = nn.Linear(1, 1)

        @session.udf("float", name="aff2", modules=[lin])
        def aff2(v: Tensor) -> Tensor:
            return lin(v.to(device="cpu").reshape(-1, 1)).reshape(-1)

        bounds = plan_shards(1300, 3, min_rows=2, align=512)
        assert bounds == [(0, 512), (512, 1024), (1024, 1300)]
        stmt = "SELECT id FROM t WHERE aff2(y) > 0"
        serial = session.sql.query(stmt, device="cuda").run()
        for shards in (2, 3, 7):
            sharded = session.sql.query(stmt, device="cuda", extra_config={
                "shards": shards, "parallel_min_rows": 2}).run()
            assert np.array_equal(serial.column("id"), sharded.column("id")), shards


class TestExecutionParity:
    def test_limit_offset_and_distinct_over_sharded_prefix(self):
        session = _session()
        for stmt in (
            "SELECT id, y FROM t WHERE x > 5 ORDER BY y DESC, id LIMIT 9 OFFSET 3",
            "SELECT DISTINCT s FROM t WHERE x < 40",
            "SELECT s, AVG(x) AS m FROM t GROUP BY s ORDER BY s",
        ):
            a = session.sql.query(stmt).run()
            b = session.sql.query(stmt, extra_config={
                "shards": 5, "parallel_min_rows": 2}).run()
            assert a.column_names == b.column_names
            for name in a.column_names:
                av, bv = a.column(name), b.column(name)
                assert av.dtype == bv.dtype
                if av.dtype.kind == "f":
                    assert np.array_equal(av, bv, equal_nan=True)
                else:
                    assert np.array_equal(av, bv)

    def test_execute_many_shares_shard_slices(self):
        session = _session()
        stmts = ["SELECT COUNT(*) FROM t WHERE x > 10",
                 "SELECT COUNT(*) FROM t WHERE x > 20"]
        serial = [q.scalar() for q in session.execute_many(stmts)]
        sharded = [q.scalar() for q in session.execute_many(
            stmts, extra_config={"shards": 4, "parallel_min_rows": 2})]
        assert serial == sharded
