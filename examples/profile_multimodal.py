"""Profile a Fig 2 multimodal top-k query with the telemetry subsystem.

Runs the paper's 'KFC Receipt' top-k similarity search, then:

1. ``EXPLAIN ANALYZE`` — per-operator rows/wall-time, shard timings,
   kernel-vs-fallback paths and cache attribution, cold vs cache-warm;
2. dumps a Chrome ``trace_event`` JSON of the run (open in
   chrome://tracing or https://ui.perfetto.dev to see the shard-pool and
   batcher concurrency per thread);
3. prints the session-wide metrics snapshot and the slow-query log.

Run:  python examples/profile_multimodal.py
"""

import numpy as np

from repro.apps.multimodal import fig2_queries, setup_multimodal
from repro.core.session import Session
from repro.datasets.attachments import make_attachments

SHARDS = {"shards": 4, "parallel_min_rows": 8}
TRACE_PATH = "multimodal_topk_trace.json"


def plan_text(result) -> str:
    return "\n".join(str(line) for line in np.asarray(result.column("plan")))


def main() -> None:
    session = Session()
    dataset = make_attachments(rng=np.random.default_rng(0))
    setup_multimodal(session, dataset)
    topk_q = fig2_queries()[2]

    # [1] Cold profile: first execution pays compilation and inference.
    explain = session.sql.query(f"EXPLAIN ANALYZE {topk_q}",
                                extra_config=SHARDS)
    print("=== cold run ===")
    print(plan_text(explain.run()))

    # [2] Warm profile: the plan cache and tensor cache absorb the repeat —
    # the compile line flips to plan_cache=hit and tensor_cache_hits counts
    # attribute the cached inference to the operator that asked for it.
    print("\n=== cache-warm run ===")
    print(plan_text(explain.run()))

    # [3] Chrome trace of the warm run, one lane per OS thread.
    trace = explain.last_trace()
    print(f"\nwrote {trace.dump_chrome(TRACE_PATH)} "
          f"({len(trace.spans())} spans) — open in chrome://tracing")

    # [4] Session-wide metrics: every subsystem under one snapshot.
    snapshot = session.metrics.snapshot()
    print("\n=== Session.metrics.snapshot() (selected) ===")
    for key in sorted(snapshot):
        if key.startswith(("plan_cache.", "tensor_cache.hits",
                           "tensor_cache.misses", "shard_pool.")):
            print(f"  {key} = {snapshot[key]}")
    latency = snapshot["query.latency_seconds"]
    print(f"  query.latency_seconds: count={latency['count']} "
          f"p50={latency['p50'] * 1e3:.1f}ms p99={latency['p99'] * 1e3:.1f}ms")

    # [5] Slow-query log: everything above the knob's threshold is kept.
    session.sql.query(topk_q, extra_config={"slow_query_seconds": 0.0,
                                            "telemetry": True}).run()
    entry = session.slow_log.last()
    print(f"\nslow log: {entry['statement'][:60]}... "
          f"took {entry['seconds'] * 1e3:.1f}ms; top operator: "
          f"{entry['trace_summary']['top_operators'][0]['op'][:60]}")


if __name__ == "__main__":
    main()
