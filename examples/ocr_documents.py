"""SQL over tables stored in document images (paper §5.2, Listing 8).

TDP pushes the timestamp filter below the expensive ``extract_table`` TVF,
so only the one matching document is OCRed. The baseline workflow converts
every image up front, loads the rows into MiniDuck, and queries there.

Run:  python examples/ocr_documents.py
"""

import time

import numpy as np

from repro.apps.ocr import (
    MINIDUCK_QUERY,
    PAPER_QUERY,
    bulk_convert_all,
    load_into_miniduck,
    setup_ocr,
)
from repro.core.session import Session
from repro.datasets.documents import make_documents


def main() -> None:
    session = Session()
    documents = make_documents(n=40, rows_per_doc=10)
    setup_ocr(session, documents)

    # --- TDP: lazy conversion inside the query ------------------------------
    start = time.perf_counter()
    query = session.spark.query(PAPER_QUERY)
    result = query.run(toPandas=True)
    tdp_seconds = time.perf_counter() - start
    print("TDP   :", {c: round(float(result[c][0]), 3) for c in result.columns},
          f" ({tdp_seconds * 1000:.1f} ms — converts 1 of {len(documents)} images)")

    # --- Baseline: bulk-convert everything, then query MiniDuck -------------
    start = time.perf_counter()
    extracted = bulk_convert_all(documents)
    duck = load_into_miniduck(extracted)
    baseline = duck.execute(MINIDUCK_QUERY)
    bulk_seconds = time.perf_counter() - start
    print("Bulk  :", {c: round(float(baseline[c][0]), 3) for c in baseline.columns},
          f" ({bulk_seconds * 1000:.1f} ms — converts all {len(documents)} images)")

    print(f"\nspeedup from lazy conversion: {bulk_seconds / tdp_seconds:.1f}x")

    # Ground truth check: OCR recovered exactly the rendered numbers.
    truth = documents.truth[0]
    print("truth :", {
        "AVG(SepalLength)": round(float(np.mean(truth["SepalLength"])), 3),
        "AVG(PetalLength)": round(float(np.mean(truth["PetalLength"])), 3),
    })


if __name__ == "__main__":
    main()
