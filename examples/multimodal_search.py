"""Multimodal queries over email attachments (paper §5.1, Fig 2).

Filters, aggregates and top-k searches over an image column using the
natural-language ``image_text_similarity`` UDF (TinyCLIP under the hood).

Run:  python examples/multimodal_search.py
"""

import numpy as np

from repro.apps.multimodal import fig2_queries, setup_multimodal
from repro.core.session import Session
from repro.datasets.attachments import make_attachments


def main() -> None:
    session = Session()
    dataset = make_attachments(rng=np.random.default_rng(0))
    print(f"dataset: {len(dataset)} attachments "
          f"(100 photographs / 50 receipts / 50 company logos)")
    setup_multimodal(session, dataset)

    count_q, filter_q, topk_q = fig2_queries()

    # Query 1: how many receipts? (paper expects 50)
    count = session.spark.query(count_q).run().scalar()
    print(f"\n[1] {count_q}\n    -> {count}")

    # Query 2: fetch the dog photos.
    result = session.spark.query(filter_q).run()
    print(f"\n[2] {filter_q}\n    -> {len(result)} images returned")

    # Query 3: top-2 'KFC Receipt' by similarity score.
    top = session.spark.query(topk_q).run()
    scores = top.column("score")
    print(f"\n[3] {topk_q}\n    -> top-2 scores: {np.round(scores, 3).tolist()}")

    # Verify the retrieval against ground truth metadata.
    receipts = int((dataset.labels == "receipt").sum())
    print(f"\nground truth receipts: {receipts} (query counted {count})")


if __name__ == "__main__":
    main()
