"""Multimodal queries over email attachments (paper §5.1, Fig 2).

Filters, aggregates and top-k searches over an image column using the
natural-language ``image_text_similarity`` UDF (TinyCLIP under the hood),
then the same top-k accelerated through a ``CREATE VECTOR INDEX`` IVF-Flat
index (the paper's approximate-indexing future work).

Run:  python examples/multimodal_search.py
"""

import time

import numpy as np

from repro.apps.multimodal import fig2_queries, setup_multimodal
from repro.core.session import Session
from repro.datasets.attachments import make_attachments


def main() -> None:
    session = Session()
    dataset = make_attachments(rng=np.random.default_rng(0))
    print(f"dataset: {len(dataset)} attachments "
          f"(100 photographs / 50 receipts / 50 company logos)")
    setup_multimodal(session, dataset)

    count_q, filter_q, topk_q = fig2_queries()

    # Query 1: how many receipts? (paper expects 50)
    count = session.spark.query(count_q).run().scalar()
    print(f"\n[1] {count_q}\n    -> {count}")

    # Query 2: fetch the dog photos.
    result = session.spark.query(filter_q).run()
    print(f"\n[2] {filter_q}\n    -> {len(result)} images returned")

    # Query 3: top-2 'KFC Receipt' by similarity score (exact scan).
    exact_query = session.spark.query(topk_q)
    start = time.perf_counter()
    top = exact_query.run()
    exact_seconds = time.perf_counter() - start
    scores = top.column("score")
    print(f"\n[3] {topk_q}\n    -> top-2 scores: {np.round(scores, 3).tolist()} "
          f"({exact_seconds * 1e3:.1f} ms, exact scan)")

    # Query 3 again, through a vector index: CREATE VECTOR INDEX makes the
    # optimizer rewrite the ORDER BY ... DESC LIMIT k into an IVF probe.
    session.sql.query(
        "CREATE VECTOR INDEX att_ivf ON Attachments(images) "
        "WITH (cells=16, nprobe=4)"
    ).run()
    indexed_query = session.spark.query(topk_q)
    indexed_query.run()                          # first run builds the index
    start = time.perf_counter()
    top_indexed = indexed_query.run()
    indexed_seconds = time.perf_counter() - start
    print(f"\n[4] same query via vector index\n"
          f"    -> top-2 scores: {np.round(top_indexed.column('score'), 3).tolist()} "
          f"({indexed_seconds * 1e3:.1f} ms, "
          f"{exact_seconds / max(indexed_seconds, 1e-9):.1f}x faster)")
    print("    physical plan: "
          + indexed_query.explain().splitlines()[-2].strip())
    print("\n" + repr(session.sql.query("SHOW INDEXES").run(toPandas=True)))

    # Verify the retrieval against ground truth metadata.
    receipts = int((dataset.labels == "receipt").sum())
    print(f"\nground truth receipts: {receipts} (query counted {count})")


if __name__ == "__main__":
    main()
