"""Learning from Label Proportions with a trainable query (paper §5.3-5.4).

Trains the Listing 9 classifier from per-bag counts only, compares against
the fully supervised Non-LLP baseline, and shows the Label-DP variant with
Laplace-noised counts.

Run:  python examples/llp_adult_income.py
"""

import numpy as np

from repro.apps import llp
from repro.baselines.regression import train_non_llp
from repro.core.session import Session
from repro.datasets.adult import make_adult, train_test_split
from repro.datasets.bags import laplace_counts, make_bags


def main() -> None:
    adult = make_adult(4096, np.random.default_rng(0))
    (train_x, train_y), (test_x, test_y) = train_test_split(adult)
    print(f"adult income (synthetic): {len(train_y)} train / {len(test_y)} test, "
          f"positive rate {train_y.mean():.2f}")

    # Fully supervised baseline (instance labels available).
    baseline = train_non_llp(train_x, train_y, epochs=15)
    base_err = baseline.error(test_x, test_y)
    print(f"\nNon-LLP baseline test error: {base_err:.3f}")

    # LLP: supervise only with per-bag counts, via the trainable SQL query.
    # Budget ~3000 gradient steps per setting regardless of bag size.
    for bag_size in (8, 64):
        session = Session()
        app = llp.build_app(session, train_x.shape[1])
        bags = make_bags(train_x, train_y, bag_size, rng=np.random.default_rng(1))
        epochs = max(1, 3000 // len(bags))
        llp.train_on_bags(app, bags, epochs=epochs, lr=0.01)
        err = app.model.error(test_x, test_y)
        print(f"LLP  (bag size {bag_size:3d}): test error {err:.3f}")

    # Label-DP: Laplace noise (eps=0.1) on the counts before training.
    session = Session()
    app = llp.build_app(session, train_x.shape[1])
    bags = make_bags(train_x, train_y, 64, rng=np.random.default_rng(1))
    noisy = laplace_counts(bags, epsilon=0.1, rng=np.random.default_rng(2))
    llp.train_on_bags(app, noisy, epochs=max(1, 3000 // len(noisy)), lr=0.01)
    err = app.model.error(test_x, test_y)
    print(f"LLP-DP (bag size 64, eps=0.1): test error {err:.3f}")


if __name__ == "__main__":
    main()
