"""Training CNNs inside a SQL query: MNISTGrid (paper Listings 4-6, §5.5).

The trainable query ``SELECT Digit, Size, COUNT(*) FROM
parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size`` backpropagates the
count error through soft group-by/count operators into the two CNN parsers.
Afterwards the trained digit parser is extracted and evaluated on held-out
digit classification (Experiment 2).

Run:  python examples/mnist_grid_training.py
"""

import numpy as np

from repro.apps import mnistgrid
from repro.core.session import Session
from repro.datasets.digits import make_digits
from repro.datasets.mnist_grid import make_grids


def main() -> None:
    # The faithful Listing-4/5/6 form: compile, inspect, run one step.
    session = Session()
    listing_app = mnistgrid.build_app(session)
    print("compiled trainable query (paper Listing 6):")
    print(listing_app.query.explain())
    params = sum(p.numel() for p in listing_app.query.parameters())
    print(f"\ntrainable parameters discovered through the query: {params:,}")
    mnistgrid.train(listing_app, make_grids(4, np.random.default_rng(9)),
                    iterations=2)
    print("one Listing-5 training iteration: ok (the paper runs 40,000)")

    # For a CPU-friendly demonstration of convergence we train the batched
    # variant (8 grids per step through one differentiable query).
    session = Session()
    app = mnistgrid.build_batched_app(session, batch_size=8)
    train_set = make_grids(96, np.random.default_rng(0))
    test_set = make_grids(16, np.random.default_rng(1))

    before = mnistgrid.evaluate_mse(app, test_set)
    print(f"\ntest count-MSE before training: {before:.3f}")

    curve = mnistgrid.train_batched(app, train_set, steps=400, batch_size=8,
                                    lr=1e-3, eval_every=100, eval_set=test_set)
    for iteration, mse in curve:
        print(f"  step {iteration:4d}: test count-MSE {mse:.3f}")

    # Experiment 2: extract the digit parser and classify individual digits
    # it was never directly supervised on.
    digits = make_digits(400, np.random.default_rng(2))
    accuracy = mnistgrid.digit_accuracy(app, digits.images, digits.digits)
    print(f"\nextracted digit_parser accuracy on held-out digits: {accuracy:.2%}")

    # Deployment: the same query answers exactly at inference (soft -> exact).
    app.query.eval()
    app.register_grid(test_set.grids[0])
    print("\nexact inference on one grid:")
    print(app.query.run(toPandas=True).head(6))


if __name__ == "__main__":
    main()
