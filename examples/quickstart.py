"""Quickstart: ingest, compile, execute (paper Examples 2.1-2.3).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as tdp
from repro.storage.frame import DataFrame


def main() -> None:
    # --- Example 2.1: ingesting data --------------------------------------
    # A small table of digits with a size tag; in the paper this is a Pandas
    # dataframe stored on GPU ("cuda" here is the simulated accelerator).
    rng = np.random.default_rng(0)
    data = DataFrame({
        "Digits": rng.integers(0, 10, size=1000),
        "Sizes": rng.choice(["small", "large"], size=1000),
    })
    tdp.sql.register_df(data, "numbers", device="cuda")
    print("registered tables:", tdp.sql.tables())

    # --- Example 2.2: query compilation ------------------------------------
    statement = ("SELECT Digits, Sizes, COUNT(*) FROM numbers "
                 "GROUP BY Digits, Sizes")
    compiled_query = tdp.sql.spark.query(statement, device="cuda")
    print("\nThe compiled query is a model over the tensor runtime:")
    print(compiled_query.explain())

    # --- Example 2.3: query execution --------------------------------------
    result = compiled_query.run(toPandas=True)
    print("\nresult (first rows):")
    print(result.head(8))

    # Encodings at work: the string column is order-preserving dictionary
    # encoded, so this range predicate runs on integer codes.
    filtered = tdp.sql.spark.query(
        "SELECT COUNT(*) FROM numbers WHERE Sizes >= 'small'", device="cuda"
    ).run()
    print("\nrows with Sizes >= 'small':", filtered.scalar())

    # Arithmetic projections compile to differentiable tensor programs too.
    arith = tdp.sql.spark.query(
        "SELECT Digits, Digits * 2 + 1 AS odd FROM numbers LIMIT 5"
    ).run(toPandas=True)
    print("\narithmetic projection:")
    print(arith)


if __name__ == "__main__":
    main()
