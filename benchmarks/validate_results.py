"""Schema validation for the BENCH_RESULTS.json artifact.

CI uploads the file per commit; downstream tooling (perf-trajectory plots,
the ROADMAP item-3 SLO dashboards) parses it blind, so a malformed artifact
must fail the benchmarks job at the commit that produced it, not weeks later
in a reader. Hand-rolled checks — the container has no jsonschema package.

Usage::

    python benchmarks/validate_results.py BENCH_RESULTS.json
"""

from __future__ import annotations

import json
import numbers
import sys
from typing import List

_STATUSES = {"passed", "failed"}
# Leaf metric values record_metric may emit.
_LEAF_TYPES = (numbers.Real, str, bool)
# Keys a latency-percentile group must carry when any p* key is present.
_PERCENTILE_KEYS = ("p50", "p95", "p99")


def _err(errors: List[str], path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def _check_metric_group(errors: List[str], name: str, group) -> None:
    path = f"metrics.{name}"
    if not isinstance(group, dict):
        _err(errors, path, f"must be an object, got {type(group).__name__}")
        return
    for key, value in group.items():
        if not isinstance(key, str):
            _err(errors, path, f"non-string key {key!r}")
        elif not isinstance(value, _LEAF_TYPES):
            _err(errors, f"{path}.{key}",
                 f"leaf must be number/string/bool, got {type(value).__name__}")
        elif isinstance(value, numbers.Real) and not isinstance(value, bool) \
                and (value != value):    # NaN is not representable downstream
            _err(errors, f"{path}.{key}", "NaN is not a valid metric value")
    present = [k for k in _PERCENTILE_KEYS if k in group]
    if present and len(present) != len(_PERCENTILE_KEYS):
        missing = sorted(set(_PERCENTILE_KEYS) - set(present))
        _err(errors, path, f"partial percentile set: missing {missing}")
    if len(present) == len(_PERCENTILE_KEYS):
        p50, p95, p99 = (group[k] for k in _PERCENTILE_KEYS)
        if not (p50 <= p95 <= p99):
            _err(errors, path,
                 f"percentiles must be monotone: p50={p50} p95={p95} p99={p99}")


def validate(data) -> List[str]:
    """All schema violations in a parsed BENCH_RESULTS document (empty = valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    for required in ("scale", "benches", "metrics"):
        if required not in data:
            _err(errors, required, "missing required key")
    scale = data.get("scale")
    if scale is not None and (not isinstance(scale, numbers.Real)
                              or isinstance(scale, bool) or scale <= 0):
        _err(errors, "scale", f"must be a positive number, got {scale!r}")
    benches = data.get("benches", {})
    if not isinstance(benches, dict):
        _err(errors, "benches", "must be an object")
        benches = {}
    for name, outcome in benches.items():
        path = f"benches.{name}"
        if not isinstance(outcome, dict):
            _err(errors, path, "must be an object")
            continue
        if outcome.get("status") not in _STATUSES:
            _err(errors, f"{path}.status",
                 f"must be one of {sorted(_STATUSES)}, got "
                 f"{outcome.get('status')!r}")
        seconds = outcome.get("seconds")
        if not isinstance(seconds, numbers.Real) or isinstance(seconds, bool) \
                or seconds < 0:
            _err(errors, f"{path}.seconds",
                 f"must be a non-negative number, got {seconds!r}")
        unknown = set(outcome) - {"status", "seconds", "retried"}
        if unknown:
            _err(errors, path, f"unknown keys {sorted(unknown)}")
    metrics = data.get("metrics", {})
    if not isinstance(metrics, dict):
        _err(errors, "metrics", "must be an object")
        metrics = {}
    for name, group in metrics.items():
        _check_metric_group(errors, name, group)
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        sys.stderr.write("usage: validate_results.py BENCH_RESULTS.json\n")
        return 2
    try:
        with open(argv[0]) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"[validate_results] cannot read {argv[0]}: {exc}\n")
        return 1
    errors = validate(data)
    if errors:
        for error in errors:
            sys.stderr.write(f"[validate_results] {error}\n")
        return 1
    benches = data.get("benches", {})
    print(f"[validate_results] {argv[0]} OK: {len(benches)} benches, "
          f"{len(data.get('metrics', {}))} metric groups")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
