"""Fig 3 (middle) — LLP classification error vs bag size (paper §5.3-5.4).

Three series over bag sizes {1, 8, 16, 32, 64, 128, 256, 512}:
  * LLP       — trainable query on exact bag counts (error rises slowly with
                bag size, staying near the supervised baseline for small bags)
  * LLP-DP    — Laplace-noised counts, eps = 0.1 (very high error for small
                bags, U-shaped with an optimum near bag size 64)
  * Non-LLP   — fully supervised baseline (flat dashed line)
"""

import numpy as np
import pytest

from repro.apps import llp
from repro.baselines.regression import train_non_llp
from repro.bench.harness import (bench_scale, print_table,
                                 report_paper_vs_measured, scaled)
from repro.core.session import Session
from repro.datasets.adult import make_adult, train_test_split
from repro.datasets.bags import laplace_counts, make_bags

BAG_SIZES = [1, 8, 16, 32, 64, 128, 256, 512]
EPSILON = 0.1
TARGET_STEPS = 4000      # gradient steps per setting, scaled by bag count
LR = 0.01                # calibrated: stable for single-instance bags too


@pytest.fixture(scope="module")
def adult_split():
    adult = make_adult(scaled(4096), np.random.default_rng(0))
    return train_test_split(adult, rng=np.random.default_rng(1))


def _train_llp(train_x, train_y, test_x, test_y, bag_size, noisy, seed):
    session = Session()
    app = llp.build_app(session, train_x.shape[1])
    bags = make_bags(train_x, train_y, bag_size,
                     rng=np.random.default_rng(seed))
    if noisy:
        bags = laplace_counts(bags, EPSILON, rng=np.random.default_rng(seed + 1))
    epochs = max(1, int(np.ceil(scaled(TARGET_STEPS) / max(len(bags), 1))))
    llp.train_on_bags(app, bags, epochs=epochs, lr=LR, seed=seed)
    return app.model.error(test_x, test_y)


def _bag_sizes(train_rows: int) -> list:
    """The documented sizes at full scale; at smoke scale (< 1) only sizes
    the shrunken dataset can fill with enough bags to train on — accuracy
    claims at bag 512 are meaningless over a few hundred rows (same policy
    as bench_vector_topk's fixed-corpus recall gates)."""
    if bench_scale() >= 1:
        return list(BAG_SIZES)
    supported = [size for size in BAG_SIZES if size <= train_rows // 8]
    return supported or list(BAG_SIZES[:1])


@pytest.fixture(scope="module")
def series(adult_split):
    (train_x, train_y), (test_x, test_y) = adult_split
    baseline = train_non_llp(train_x, train_y, epochs=25)
    non_llp_error = baseline.error(test_x, test_y)
    bag_sizes = _bag_sizes(len(train_x))
    llp_errors, dp_errors = [], []
    for bag_size in bag_sizes:
        llp_errors.append(_train_llp(train_x, train_y, test_x, test_y,
                                     bag_size, noisy=False, seed=bag_size))
        dp_errors.append(_train_llp(train_x, train_y, test_x, test_y,
                                    bag_size, noisy=True, seed=bag_size))
    rows = [
        [size, llp_err, dp_err, non_llp_error]
        for size, llp_err, dp_err in zip(bag_sizes, llp_errors, dp_errors)
    ]
    print_table(
        "Fig 3 (middle): LLP classification error vs bag size",
        ["bag size", "LLP", "LLP-DP (eps=0.1)", "Non-LLP"], rows,
    )
    return non_llp_error, llp_errors, dp_errors, bag_sizes


class TestFig3Middle:
    def test_fig3_middle_llp(self, benchmark, series):
        non_llp_error, llp_errors, _, bag_sizes = series
        small_bag_error = llp_errors[0]
        large_bag_error = np.mean(llp_errors[-2:])
        large_sizes = "/".join(str(s) for s in bag_sizes[-2:])
        report_paper_vs_measured("Fig 3 (middle) LLP", [
            {"metric": "small-bag LLP close to Non-LLP",
             "paper": "errors quite close for small bags",
             "measured": f"LLP(1)={small_bag_error:.3f} vs "
                         f"base={non_llp_error:.3f}",
             "holds": small_bag_error < non_llp_error + 0.08},
            {"metric": "error grows with bag size",
             "paper": "gradual increase, still relatively stable",
             "measured": f"LLP({large_sizes}) mean={large_bag_error:.3f}",
             "holds": large_bag_error >= small_bag_error - 0.02},
            {"metric": f"LLP stays far from chance even at {bag_sizes[-1]}",
             "paper": "error remains relatively stable",
             "measured": f"{llp_errors[-1]:.3f}",
             "holds": llp_errors[-1] < 0.45},
        ])
        assert small_bag_error < non_llp_error + 0.08
        assert llp_errors[-1] < 0.45
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_fig3_middle_llp_dp(self, benchmark, series):
        non_llp_error, llp_errors, dp_errors, bag_sizes = series
        best = int(np.argmin(dp_errors))
        report_paper_vs_measured("Fig 3 (middle) LLP-DP", [
            {"metric": "small bags destroyed by noise",
             "paper": "error very high at bag size 1",
             "measured": f"{dp_errors[0]:.3f}",
             "holds": dp_errors[0] > llp_errors[0] + 0.1},
            {"metric": "optimal bag size interior (paper: 64)",
             "paper": "trade-off optimum near 64",
             "measured": f"best at {bag_sizes[best]}",
             "holds": 8 <= bag_sizes[best] <= 256},
            {"metric": "DP worse than plain LLP at small bags",
             "paper": "noise overpowers label signal",
             "measured": f"DP(1)={dp_errors[0]:.3f} vs LLP(1)={llp_errors[0]:.3f}",
             "holds": dp_errors[0] > llp_errors[0]},
        ])
        assert dp_errors[0] > llp_errors[0]
        assert min(dp_errors) < dp_errors[0]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_llp_training_step(self, benchmark, adult_split):
        (train_x, train_y), _ = adult_split
        session = Session()
        app = llp.build_app(session, train_x.shape[1])
        bags = make_bags(train_x, train_y, 64, rng=np.random.default_rng(0))

        def one_epoch():
            llp.train_on_bags(app, bags[:8], epochs=1, lr=0.05)

        benchmark.pedantic(one_epoch, rounds=3, iterations=1, warmup_rounds=1)
