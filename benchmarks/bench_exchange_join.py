"""Exchange-operator benchmark: hash-repartitioned joins and grouped
aggregates (the partition/exchange subsystem).

Joins a wide fact table against a dimension through the hash-exchange
drivers (``exchange=True``, shards=4) versus the serial interpreter, plus a
non-mergeable grouped aggregate (float SUM/AVG repartitioned on the group
keys). Two properties, gated differently:

* **Bit-identity** (gated unconditionally, on any machine): exchanged
  execution returns byte-identical columns — the partitioned sorted-lookup
  joins reuse the serial plan's joint key factorization, and the stitch
  reassembles the exact serial row order (see docs/EXCHANGE.md).

* **Latency** (gated by available parallelism): per-partition join bodies
  run on shard-pool threads over GIL-releasing numpy sorts. On >= 4 cores
  the gate is the tentpole's 1.5x at 4 shards; on 2-3 cores a reduced
  1.15x; on a single core the bench asserts the exchange costs < 30%
  overhead and reports the measured ratio either way (partitioned sorts are
  often faster even serially — smaller n log n — but that is not gated).
"""

import os
import time

import numpy as np

from repro.bench.harness import print_table, record_metric, scaled
from repro.core.session import Session

SHARDS = 4
EXCHANGE_CONFIG = {"shards": SHARDS, "parallel_min_rows": 8}
JOIN_QUERY = ("SELECT x.id, x.f, d.w, d.label FROM fact x JOIN dim d "
              "ON x.b = d.b")
AGG_QUERY = ("SELECT k, SUM(f) AS sf, AVG(f) AS af FROM fact "
             "GROUP BY k")


def _session() -> Session:
    n = scaled(400_000)
    dim_n = scaled(60_000)
    rng = np.random.default_rng(11)
    session = Session()
    session.sql.register_dict({
        "id": np.arange(n, dtype=np.int64),
        "b": rng.integers(0, dim_n, n).astype(np.int64),
        "k": rng.integers(0, 512, n).astype(np.int64),
        "f": rng.normal(size=n),
    }, "fact")
    session.sql.register_dict({
        "b": np.arange(dim_n, dtype=np.int64),
        "w": rng.normal(size=dim_n),
        "label": np.array([f"L{i % 97}" for i in range(dim_n)], dtype=object),
    }, "dim")
    return session


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _assert_bitwise(a, b, context):
    assert list(a) == list(b), context
    for name in a:
        assert a[name].dtype == b[name].dtype, (context, name)
        if a[name].dtype.kind == "f":
            assert np.array_equal(a[name], b[name], equal_nan=True), (context, name)
        else:
            assert np.array_equal(a[name], b[name]), (context, name)


def _best_of(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speedup_gate(cores: int) -> float:
    if cores >= 4:
        return 1.5
    if cores >= 2:
        return 1.15
    return 0.0          # single core: report-only (overhead bound applies)


class TestExchangeJoin:
    def test_partitioned_join_speedup_and_bit_identity(self, benchmark):
        session = _session()
        serial_j = session.sql.query(JOIN_QUERY, extra_config={"shards": 1})
        exchange_j = session.sql.query(JOIN_QUERY,
                                       extra_config=EXCHANGE_CONFIG)
        serial_a = session.sql.query(AGG_QUERY, extra_config={"shards": 1})
        exchange_a = session.sql.query(AGG_QUERY,
                                       extra_config=EXCHANGE_CONFIG)

        # Bit-identity first (gated everywhere; also warms the plans).
        _assert_bitwise(_snapshot(serial_j.run()), _snapshot(exchange_j.run()),
                        "join")
        _assert_bitwise(_snapshot(serial_a.run()), _snapshot(exchange_a.run()),
                        "grouped aggregate")

        t_serial_j = _best_of(lambda: serial_j.run())
        t_exchange_j = _best_of(lambda: exchange_j.run())
        t_serial_a = _best_of(lambda: serial_a.run())
        t_exchange_a = _best_of(lambda: exchange_a.run())
        join_speedup = t_serial_j / max(t_exchange_j, 1e-9)
        agg_speedup = t_serial_a / max(t_exchange_a, 1e-9)
        cores = os.cpu_count() or 1
        gate = _speedup_gate(cores)
        print_table(
            f"exchange: hash-repartitioned join + grouped aggregate, "
            f"{cores} cores",
            ["query", "serial s", f"exchange s (shards={SHARDS})", "speedup"],
            [["join", t_serial_j, t_exchange_j, join_speedup],
             ["grouped agg", t_serial_a, t_exchange_a, agg_speedup]],
        )
        snapshot = session.metrics.snapshot()
        print(f"exchange metrics: partitions={snapshot.get('exchange.partitions')} "
              f"rows_moved={snapshot.get('exchange.rows_moved')} "
              f"skew={snapshot.get('exchange.skew')}")
        record_metric(
            "exchange_join",
            speedup=round(join_speedup, 2), agg_speedup=round(agg_speedup, 2),
            shards=SHARDS, cores=cores, gate=gate, bit_identical=True,
            serial_s=round(t_serial_j, 3), exchange_s=round(t_exchange_j, 3),
        )
        if gate:
            assert join_speedup >= gate, (
                f"partitioned join gained {join_speedup:.2f}x on {cores} "
                f"cores (gate {gate}x)")
        else:
            # One core cannot parallelize; the exchange must stay near-free.
            assert join_speedup >= 0.7, (
                f"exchange cost {1 / join_speedup:.2f}x overhead on one core")
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
