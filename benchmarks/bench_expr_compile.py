"""Expression-kernel compilation sweep (TQP-style codegen).

Times the tree-walking interpreter against the compiled vectorized kernels
per expression family, serial and sharded, and emits each speedup into
``BENCH_RESULTS.json`` so the perf trajectory of the codegen path is
machine-readable per commit. The hard perf gates live in
``bench_ablation_operators.py`` (``TestExprCompilation``); this sweep is
coverage: every family must stay bit-identical between the two engines,
and the headline numbers are recorded, not gated.
"""

import numpy as np

from repro.bench.harness import print_table, record_metric, scaled, time_call
from repro.core.session import Session

N_ROWS = scaled(250_000)

FAMILIES = [
    ("arith", "SELECT COUNT(*) AS c FROM t "
              "WHERE (x * 3 - y) / 2 + x % 5 > 0"),
    ("compare", "SELECT COUNT(*) AS c FROM t "
                "WHERE x >= -10 AND y < 0.5 AND x != 7"),
    ("case", "SELECT SUM(CASE WHEN x > 0 THEN y ELSE -y END) AS s FROM t "
             "WHERE y IS NOT NULL"),
    ("in_between", "SELECT COUNT(*) AS c FROM t "
                   "WHERE x IN (1, 2, 3, 5, 8) OR y BETWEEN -0.1 AND 0.1"),
    ("like", "SELECT COUNT(*) AS c FROM t WHERE s LIKE '%ing' OR s LIKE 'A%'"),
    ("upper_length", "SELECT COUNT(*) AS c FROM t "
                     "WHERE UPPER(s) = 'APPLE007' OR LENGTH(s) < 9"),
    ("builtins", "SELECT SUM(ROUND(SIGMOID(y), 3) + SQRT(ABS(x))) AS s "
                 "FROM t WHERE x > -40"),
]


def _session():
    rng = np.random.default_rng(13)
    vocab = np.asarray(
        [f"word{i:03d}ing" if i % 3 else f"Apple{i:03d}" for i in range(150)],
        dtype=object)
    floats = rng.normal(size=N_ROWS).astype(np.float32)
    floats[rng.random(N_ROWS) < 0.05] = np.nan
    session = Session()
    session.sql.register_dict({
        "x": rng.integers(-50, 50, size=N_ROWS),
        "y": floats,
        "s": vocab[rng.integers(0, len(vocab), size=N_ROWS)],
    }, "t")
    return session


def _assert_equal(a, b, context):
    assert list(a.column_names) == list(b.column_names), context
    for name in a.column_names:
        av = np.asarray(a.column(name))
        bv = np.asarray(b.column(name))
        assert av.dtype == bv.dtype, (context, name, av.dtype, bv.dtype)
        assert np.array_equal(av, bv, equal_nan=av.dtype.kind == "f"), \
            (context, name)


class TestExprCompileSweep:
    def test_families_serial(self, benchmark):
        session = _session()
        rows = []
        for family, sql in FAMILIES:
            off_q = session.sql.query(
                sql, extra_config={"compile_exprs": False,
                                   "tensor_cache": False})
            on_q = session.sql.query(
                sql, extra_config={"compile_exprs": True,
                                   "tensor_cache": False})
            _assert_equal(off_q.run(), on_q.run(), family)
            off_s = time_call(off_q.run, repeat=3)
            on_s = time_call(on_q.run, repeat=3)
            rows.append([family, off_s, on_s, f"{off_s / on_s:.2f}x"])
            record_metric(f"expr_compile_{family}",
                          interpreter_s=round(off_s, 5),
                          compiled_s=round(on_s, 5),
                          speedup=round(off_s / on_s, 2))
        print_table(
            f"Expression kernels vs interpreter ({N_ROWS} rows, serial)",
            ["family", "interpreter (s)", "compiled (s)", "speedup"], rows,
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_families_sharded(self, benchmark):
        """Shards reuse one compiled kernel; per-shard results must stay
        bit-identical and the speedup must survive the split."""
        session = _session()
        shard = {"shards": 4, "parallel_min_rows": 2}
        rows = []
        for family, sql in FAMILIES[:4] + FAMILIES[-3:]:
            off_q = session.sql.query(
                sql, extra_config={**shard, "compile_exprs": False,
                                   "tensor_cache": False})
            on_q = session.sql.query(
                sql, extra_config={**shard, "compile_exprs": True,
                                   "tensor_cache": False})
            _assert_equal(off_q.run(), on_q.run(), family)
            off_s = time_call(off_q.run, repeat=3)
            on_s = time_call(on_q.run, repeat=3)
            rows.append([family, off_s, on_s, f"{off_s / on_s:.2f}x"])
        print_table(
            f"Expression kernels vs interpreter ({N_ROWS} rows, shards=4)",
            ["family", "interpreter (s)", "compiled (s)", "speedup"], rows,
        )
        record_metric("expr_compile_sharded_like",
                      speedup=round(rows[-3][1] / rows[-3][2], 2))
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
