"""Fig 2 — multimodal queries over email attachments (paper §5.1).

Left side: the three example queries and their expected answers (the filter
query must count exactly the 50 receipts). Right side: average execution
time of a 30-query mixed workload on 1,000 images, CPU vs (simulated) GPU —
the paper reports the GPU around 5x faster.
"""

import numpy as np
import pytest

from repro.apps.multimodal import fig2_queries, mixed_workload, setup_multimodal
from repro.bench.harness import Timer, print_table, report_paper_vs_measured
from repro.core.session import Session


class TestFig2Left:
    def test_fig2_left_query_results(self, benchmark, fig2_dataset, clip_model):
        session = Session()
        setup_multimodal(session, fig2_dataset, clip_model)
        count_q, filter_q, topk_q = fig2_queries()

        count = session.spark.query(count_q).run().scalar()
        dog_result = session.spark.query(filter_q).run()
        top = session.spark.query(topk_q).run()
        top_scores = top.column("score")

        true_receipts = int((fig2_dataset.labels == "receipt").sum())
        true_dogs = int((fig2_dataset.subjects == "dog").sum())

        report_paper_vs_measured("Fig 2 (left) multimodal query results", [
            {"metric": "receipt filter COUNT(*)", "paper": 50,
             "measured": count, "holds": count == true_receipts == 50},
            {"metric": "'dog' filter rows", "paper": "dog photos",
             "measured": len(dog_result),
             "holds": len(dog_result) == true_dogs},
            {"metric": "top-2 'KFC Receipt' scores > 0.8",
             "paper": "2 KFC receipts",
             "measured": f"{np.round(top_scores.astype(float), 2).tolist()}",
             "holds": bool((top_scores > 0.8).all()) and len(top) == 2},
        ])
        assert count == 50
        assert len(dog_result) == true_dogs

        # Benchmark one representative filter query end to end.
        query = session.spark.query(count_q)
        benchmark.pedantic(query.run, rounds=3, iterations=1, warmup_rounds=1)


def _run_workload(device, dataset, model, n_queries=30):
    session = Session()
    setup_multimodal(session, dataset, model, device=device)
    queries = mixed_workload(n=n_queries)
    compiled = [session.spark.query(q, device=device) for q in queries]
    times = []
    for query in compiled:
        with Timer() as t:
            query.run()
        times.append(t.seconds)
    return float(np.mean(times)), float(np.sum(times))


class TestFig2Right:
    @pytest.fixture(scope="class")
    def timings(self, workload_images, clip_model):
        gpu_avg, gpu_total = _run_workload("cuda", workload_images, clip_model)
        cpu_avg, cpu_total = _run_workload("cpu", workload_images, clip_model)
        speedup = cpu_avg / gpu_avg
        print_table(
            "Fig 2 (right): avg execution time, 30 queries x 1000 images",
            ["device", "avg query time (s)", "total (s)"],
            [["GPU (simulated)", gpu_avg, gpu_total],
             ["CPU", cpu_avg, cpu_total]],
        )
        report_paper_vs_measured("Fig 2 (right) device comparison", [
            {"metric": "GPU faster than CPU", "paper": "~5x",
             "measured": f"{speedup:.1f}x", "holds": speedup > 1.2},
            {"metric": "mechanism", "paper": "batched kernel amortisation",
             "measured": "reproduced, bounded: simulated devices share "
                         "the same silicon (see DESIGN.md)",
             "holds": True},
        ])
        return gpu_avg, cpu_avg

    def test_fig2_right_gpu_faster(self, benchmark, timings):
        gpu_avg, cpu_avg = timings
        assert gpu_avg < cpu_avg
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_fig2_right_gpu(self, benchmark, workload_images, clip_model):
        session = Session()
        setup_multimodal(session, workload_images, clip_model, device="cuda")
        query = session.spark.query(mixed_workload(n=1)[0], device="cuda")
        benchmark.pedantic(query.run, rounds=3, iterations=1, warmup_rounds=1)

    def test_fig2_right_cpu(self, benchmark, workload_images, clip_model):
        session = Session()
        setup_multimodal(session, workload_images, clip_model, device="cpu")
        query = session.spark.query(mixed_workload(n=1)[0], device="cpu")
        benchmark.pedantic(query.run, rounds=3, iterations=1, warmup_rounds=1)
