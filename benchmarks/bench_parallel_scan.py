"""Intra-query parallel execution benchmark (the PR 5 sharded-scan subsystem).

Runs the UDF-heavy Fig 2 filter pipeline — score every attachment with the
CLIP similarity UDF, filter on the score, return ids + raw float scores —
in the **cold-cache regime** (``tensor_cache_bytes=0``: every execution pays
full inference), serial (``shards=1``) versus sharded (``shards=4``).

Two properties are measured; their gating differs deliberately:

* **Bit-identity** (gated unconditionally, on any machine): sharded
  execution returns byte-identical ids, counts and float scores. Shard
  boundaries align to the device's micro-batch granularity and outputs
  stitch in shard order, so the kernel-invocation sequence is exactly
  serial execution's — this must hold everywhere, always.

* **Latency** (gated by available parallelism): shard tasks run on
  threads; the pipeline's cost is numpy inference (GIL-released), so the
  speedup tracks core count. On >= 4 cores the gate is the tentpole's 2x at
  4 shards; on 2-3 cores a reduced 1.2x; on a single core true parallelism
  is physically unavailable, so — following the bench_fig3_mnistgrid
  precedent of reporting instead of gating below a runnable scale — the
  bench only asserts sharding costs < 30% overhead, and reports the
  measured ratio into BENCH_RESULTS.json either way.

A third, core-count-independent property gates the cache integration: a
``shards=4`` run's per-shard UDF entries **assemble** into the full-column
entry, so a following ``shards=1`` run of the same statement performs zero
additional inference (PR 3's slice-assembly machinery extended to shard
lineage).
"""

import os
import time

import numpy as np

from repro.bench.harness import print_table, record_metric
from repro.apps.multimodal import setup_multimodal
from repro.core.session import Session

SHARDS = 4
QUERY = ("SELECT attachment_id, image_text_similarity('KFC Receipt', images) "
         "AS score FROM Attachments "
         "WHERE image_text_similarity('KFC Receipt', images) > 0.5")
COUNT_QUERY = ("SELECT COUNT(*) FROM Attachments "
               "WHERE image_text_similarity('receipt', images) > 0.8")
SHARD_CONFIG = {"shards": SHARDS, "parallel_min_rows": 8}


def _cold_session(dataset, model) -> Session:
    session = Session(tensor_cache_bytes=0)
    setup_multimodal(session, dataset, model)
    return session


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _best_of(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _speedup_gate(cores: int) -> float:
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.2
    return 0.0          # single core: report-only (overhead bound applies)


class TestParallelScan:
    def test_sharded_speedup_and_bit_identity(self, benchmark, fig2_dataset,
                                              clip_model):
        session = _cold_session(fig2_dataset, clip_model)
        serial_q = session.sql.query(QUERY)
        sharded_q = session.sql.query(QUERY, extra_config=SHARD_CONFIG)
        serial_c = session.sql.query(COUNT_QUERY)
        sharded_c = session.sql.query(COUNT_QUERY, extra_config=SHARD_CONFIG)

        # Bit-identity first (also warms numpy/model code paths).
        a, b = _snapshot(serial_q.run()), _snapshot(sharded_q.run())
        assert list(a) == list(b)
        for name in a:
            assert a[name].dtype == b[name].dtype
            assert np.array_equal(a[name], b[name]), name   # raw float scores
        assert serial_c.run().scalar() == sharded_c.run().scalar()

        t_serial = _best_of(lambda: (serial_q.run(), serial_c.run()))
        t_sharded = _best_of(lambda: (sharded_q.run(), sharded_c.run()))
        speedup = t_serial / max(t_sharded, 1e-9)
        cores = os.cpu_count() or 1
        gate = _speedup_gate(cores)
        print_table(
            f"sharded scan: UDF-heavy Fig 2 filter pipeline, cold cache, "
            f"{cores} cores",
            ["mode", "seconds", "speedup"],
            [["serial (shards=1)", t_serial, 1.0],
             [f"sharded (shards={SHARDS})", t_sharded, speedup]],
        )
        print(f"shard pool: {session.shard_pool.stats}")
        record_metric(
            "parallel_scan",
            speedup=round(speedup, 2), shards=SHARDS, cores=cores,
            gate=gate, serial_s=round(t_serial, 3),
            sharded_s=round(t_sharded, 3),
        )
        if gate:
            assert speedup >= gate, (
                f"sharded execution gained {speedup:.2f}x on {cores} cores "
                f"(gate {gate}x)")
        else:
            # One core cannot parallelize; sharding must stay near-free.
            assert speedup >= 0.7, (
                f"sharding cost {1 / speedup:.2f}x overhead on one core")
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_shard_entries_assemble_warm_run(self, benchmark, fig2_dataset,
                                             clip_model):
        """Cache integration (core-count independent): per-shard UDF entries
        assemble into the full-column entry, so a serial re-run of the same
        statement performs zero additional model inference."""
        session = Session()                   # cache ON for this property
        setup_multimodal(session, fig2_dataset, clip_model)
        sharded = _snapshot(session.sql.query(QUERY,
                                              extra_config=SHARD_CONFIG).run())
        before = session.tensor_cache.stats
        serial = _snapshot(session.sql.query(QUERY).run())
        after = session.tensor_cache.stats
        for name in serial:
            assert np.array_equal(serial[name], sharded[name]), name
        new_misses = after["misses"] - before["misses"]
        assert new_misses == 0, (
            f"warm serial run after a sharded run recomputed inference "
            f"({new_misses} cache misses)")
        assert after["gather_hits"] > before["gather_hits"]
        print(f"assembled warm run: {before} -> {after}")
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
