"""Inference materialization-cache benchmark (the tensor-cache subsystem).

The paper's multimodal workload re-runs NN inference inside every statement.
With the session ``TensorCache``:

* a repeated similarity query serves its UDF outputs from the cache —
  acceptance: >= 5x faster warm than cold, bit-identical results;
* an index build after a similarity query (and a query after a build)
  performs **zero** additional corpus image encodes — the two paths share
  one embedding materialization.

Corpus: the Fig 2 attachment dataset (200 images). ``REPRO_BENCH_SCALE``
trims repeats only; the smoke threshold is relaxed because a single cold
run is noisy at tiny scale.
"""

import contextlib

import numpy as np

from repro.bench.harness import (Timer, bench_scale, print_table,
                                 record_metric, scaled, time_call)
from repro.apps.multimodal import setup_multimodal
from repro.core.session import Session

K = 10


def _topk_sql(text: str, k: int = K) -> str:
    return (f"SELECT attachment_id, image_text_similarity('{text}', images) "
            f"AS score FROM Attachments ORDER BY score DESC LIMIT {k}")


@contextlib.contextmanager
def _tower_row_counter(model):
    """Count rows flowing through the image tower (corpus encode work)."""
    rows = []
    tower = model.image_tower
    orig = tower.forward

    def forward(x):
        rows.append(x.shape[0])
        return orig(x)

    tower.forward = forward
    try:
        yield rows
    finally:
        delattr(tower, "forward")


class TestUdfCache:
    def test_repeated_query_speedup(self, benchmark, fig2_dataset, clip_model):
        """Acceptance: warm repeat >= 5x faster than cold, bit-identical."""
        session = Session()
        setup_multimodal(session, fig2_dataset, clip_model)
        query = session.sql.query(_topk_sql("KFC Receipt"))

        with Timer() as cold:
            cold_result = query.run()
        warm_s = time_call(query.run, repeat=scaled(5))
        warm_result = query.run()

        assert cold_result.column("attachment_id").tolist() == \
            warm_result.column("attachment_id").tolist()
        np.testing.assert_array_equal(cold_result.column("score"),
                                      warm_result.column("score"))
        stats = session.tensor_cache.stats
        assert stats["hits"] >= 1

        speedup = cold.seconds / max(warm_s, 1e-9)
        print_table(
            f"tensor cache: repeated top-{K} similarity query (200 attachments)",
            ["path", "seconds", "speedup"],
            [["cold (model inference)", cold.seconds, 1.0],
             ["warm (cache hit)", warm_s, speedup]],
        )
        record_metric("udf_cache", speedup=round(speedup, 2),
                      cold_s=round(cold.seconds, 4), warm_s=round(warm_s, 6))
        assert speedup >= (5.0 if bench_scale() >= 1 else 2.0)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_index_build_after_query_zero_corpus_encodes(
            self, benchmark, fig2_dataset, clip_model):
        """A CREATE VECTOR INDEX build after a similarity query reuses the
        query's (micro-batch-captured) corpus embeddings."""
        session = Session()
        setup_multimodal(session, fig2_dataset, clip_model)
        n = len(fig2_dataset)
        with _tower_row_counter(clip_model) as rows:
            session.sql.query(_topk_sql("KFC Receipt")).run()
            assert sum(rows) == n                # cold: corpus encoded once
            rows.clear()
            session.sql.query(
                "CREATE VECTOR INDEX att_ivf ON Attachments(images) "
                "WITH (cells=16, nprobe=4)").run()
            indexed = session.sql.query(_topk_sql("KFC Receipt"))
            assert "IndexScan" in indexed.explain()
            indexed.run()                        # triggers the lazy build
            assert sum(rows) == 0                # zero additional encodes
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_query_after_index_build_zero_corpus_encodes(
            self, benchmark, fig2_dataset, clip_model):
        """An exact similarity scan after an index build reuses the build's
        embeddings slice by slice (CPU micro-batched path)."""
        session = Session()
        setup_multimodal(session, fig2_dataset, clip_model,
                         vector_index=True, index_cells=16, index_nprobe=4)
        n = len(fig2_dataset)
        with _tower_row_counter(clip_model) as rows:
            session.sql.query(_topk_sql("beach")).run()   # builds the index
            assert sum(rows) == n
            rows.clear()
            exact = session.sql.query(
                _topk_sql("beach"),
                extra_config={"disable_rules": ("vector_index",)})
            assert "IndexScan" not in exact.explain()
            result = exact.run()
            assert sum(rows) == 0                # full scan, no re-encode
            assert len(result) == K
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_cached_results_match_uncached(self, benchmark, fig2_dataset,
                                           clip_model):
        session = Session()
        setup_multimodal(session, fig2_dataset, clip_model)
        sql = _topk_sql("STARBUCKS receipt")
        cached = session.sql.query(sql).run()
        cached_again = session.sql.query(sql).run()
        uncached = session.sql.query(
            sql, extra_config={"tensor_cache": False}).run()
        for other in (cached_again, uncached):
            assert cached.column("attachment_id").tolist() == \
                other.column("attachment_id").tolist()
            np.testing.assert_allclose(cached.column("score"),
                                       other.column("score"), rtol=1e-6)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
