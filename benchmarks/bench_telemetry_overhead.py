"""Telemetry overhead gate (the PR 7 observability subsystem).

Two properties, matching the tentpole's cost contract:

* **Telemetry off (the default) is a no-op.** ``span(...)`` with no active
  trace returns the shared ``NULL_SPAN`` singleton — no allocation, no
  timestamp, one ContextVar read. A microbench bounds the per-call cost so
  a future edit that starts allocating on the disabled path trips here.

* **Telemetry on costs < 5%.** The same UDF-heavy Fig 2 filter pipeline is
  run untraced and with ``telemetry=True`` (per-operator spans, compile
  spans, a full ``QueryTrace`` retained per run), interleaved best-of-N so
  scheduler noise hits both modes alike. The cold-cache regime
  (``tensor_cache_bytes=0``) keeps per-run work realistic — inference
  dominates, as in serving — while still failing loudly if span bookkeeping
  ever grows a per-row or per-kernel cost.

Both numbers land in BENCH_RESULTS.json so the overhead trajectory is
visible per commit.
"""

import time

from repro.bench.harness import (print_table, record_latency_metric,
                                 record_metric, scaled)
from repro.apps.multimodal import setup_multimodal
from repro.core.session import Session
from repro.core.telemetry import NULL_SPAN, current_trace, span

QUERY = ("SELECT attachment_id, image_text_similarity('KFC Receipt', images) "
         "AS score FROM Attachments "
         "WHERE image_text_similarity('KFC Receipt', images) > 0.5")
OVERHEAD_GATE = 0.05
DISABLED_SPAN_BUDGET_S = 5e-6       # 5µs/span: ~50x headroom over measured


def _interleaved_best_of(fn_a, fn_b, rounds):
    """Best-of-N for two callables, alternating so drift hits both."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


class TestTelemetryOverhead:
    def test_traced_within_5pct_of_untraced(self, benchmark, fig2_dataset,
                                            clip_model):
        session = Session(tensor_cache_bytes=0)
        setup_multimodal(session, fig2_dataset, clip_model)
        untraced = session.sql.query(QUERY)
        traced = session.sql.query(QUERY, extra_config={"telemetry": True})

        untraced.run()                      # warm numpy / model code paths
        traced.run()
        assert traced.last_trace() is not None
        assert untraced.last_trace() is None

        rounds = scaled(7, minimum=5)
        t_traced_samples = []

        def run_traced():
            start = time.perf_counter()
            traced.run()
            t_traced_samples.append(time.perf_counter() - start)

        best_untraced, best_traced = _interleaved_best_of(
            untraced.run, run_traced, rounds)
        overhead = best_traced / max(best_untraced, 1e-9) - 1.0

        print_table(
            f"telemetry overhead: best of {rounds} interleaved runs",
            ["mode", "seconds", "overhead"],
            [["untraced", best_untraced, "-"],
             ["traced", best_traced, f"{overhead * 100:+.2f}%"]],
        )
        record_metric("telemetry_overhead",
                      untraced_ms=round(best_untraced * 1e3, 3),
                      traced_ms=round(best_traced * 1e3, 3),
                      overhead_pct=round(overhead * 100, 2))
        record_latency_metric("telemetry_traced_latency", t_traced_samples)

        spans = traced.last_trace().spans()
        assert any(s.name == "operator" for s in spans)
        assert overhead < OVERHEAD_GATE, (
            f"telemetry-on overhead {overhead * 100:.2f}% exceeds "
            f"{OVERHEAD_GATE * 100:.0f}% gate")
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_disabled_path_is_noop(self, benchmark):
        assert current_trace() is None
        probe = span("operator", node=1, op="probe")
        assert probe is NULL_SPAN          # singleton: zero allocation
        assert span("anything") is probe

        calls = scaled(100_000, minimum=20_000)
        start = time.perf_counter()
        for _ in range(calls):
            with span("operator", node=1, op="probe"):
                pass
        per_call = (time.perf_counter() - start) / calls

        record_metric("telemetry_overhead",
                      disabled_ns_per_span=round(per_call * 1e9, 1))
        print(f"disabled span(): {per_call * 1e9:.0f}ns/call "
              f"({calls} calls)")
        assert per_call < DISABLED_SPAN_BUDGET_S
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
