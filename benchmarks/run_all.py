"""Run every ``bench_*.py`` smoke and aggregate one BENCH_RESULTS.json.

CI uploads the file as an artifact, so the repo's perf trajectory
(plan-cache speedup, ANN recall/speedup, tensor-cache warm factor,
concurrent-serving throughput, ...) is machine-readable per commit.

Each bench contributes its headline numbers through
``repro.bench.harness.record_metric`` (activated by pointing
``REPRO_BENCH_JSON`` at a scratch file); this driver adds the pass/fail
status and wall time of every bench file on top.

Usage::

    python benchmarks/run_all.py [--scale 0.2] [--output BENCH_RESULTS.json]

Exit code is non-zero if any bench fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)


def discover() -> list:
    return sorted(
        name for name in os.listdir(BENCH_DIR)
        if name.startswith("bench_") and name.endswith(".py")
    )


def run_bench(name: str, scale: str, metrics_path: str) -> dict:
    env = dict(os.environ)
    env["REPRO_BENCH_SCALE"] = scale
    env["REPRO_BENCH_JSON"] = metrics_path
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    start = time.perf_counter()
    retried = False
    for attempt in (1, 2):
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", os.path.join(BENCH_DIR, name),
             "-q", "--benchmark-disable"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        )
        if proc.returncode == 0:
            break
        # Perf gates sit near their thresholds by design; one retry
        # absorbs scheduler/timing noise on shared CI runners without
        # masking real regressions (which fail twice).
        if attempt == 1:
            retried = True
            print(f"[run_all] {name}: failed once, retrying", flush=True)
    seconds = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-4000:] + proc.stderr[-2000:])
    out = {"status": "passed" if proc.returncode == 0 else "failed",
           "seconds": round(seconds, 2)}
    if retried:
        out["retried"] = True
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_BENCH_SCALE", "0.2"),
                        help="REPRO_BENCH_SCALE for every bench (default 0.2)")
    parser.add_argument("--output", default="BENCH_RESULTS.json")
    parser.add_argument("--only", nargs="*",
                        help="bench file names to run (default: all)")
    args = parser.parse_args(argv)

    benches = args.only or discover()
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        metrics_path = handle.name
    results = {"scale": float(args.scale), "benches": {}}
    failed = []
    try:
        for name in benches:
            print(f"[run_all] {name} ...", flush=True)
            outcome = run_bench(name, args.scale, metrics_path)
            results["benches"][name] = outcome
            if outcome["status"] != "passed":
                failed.append(name)
            print(f"[run_all] {name}: {outcome['status']} "
                  f"({outcome['seconds']}s)", flush=True)
        metrics = {}
        if os.path.exists(metrics_path):
            try:
                with open(metrics_path) as fh:
                    metrics = json.load(fh)
            except ValueError:
                metrics = {}
        results["metrics"] = metrics
    finally:
        if os.path.exists(metrics_path):
            os.unlink(metrics_path)

    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print(f"[run_all] wrote {args.output}: "
          f"{len(benches) - len(failed)}/{len(benches)} passed, "
          f"{len(results['metrics'])} metric groups")

    # Validate the artifact we just wrote: downstream perf tooling parses it
    # blind, so a malformed document must fail at the commit producing it.
    sys.path.insert(0, BENCH_DIR)
    import validate_results
    schema_errors = validate_results.validate(results)
    if schema_errors:
        for error in schema_errors:
            sys.stderr.write(f"[run_all] schema error: {error}\n")
        return 1
    print(f"[run_all] {args.output} schema OK")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
