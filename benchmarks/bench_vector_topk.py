"""Vector-index top-k benchmark (the PR's §5.1 approximate-indexing subsystem).

End-to-end SQL comparison on the Fig 2 attachments corpus: the same
``ORDER BY image_text_similarity(...) DESC LIMIT k`` statements executed

* exactly — TinyCLIP scores every attachment, then TopK partitions; and
* through ``CREATE VECTOR INDEX`` — the optimizer rewrites to
  ``IndexScanExec``, which probes IVF cells over pre-computed embeddings
  and only evaluates the UDF on the k emitted rows.

Acceptance: >= 3x speedup at recall@10 >= 0.9. The corpus stays at the
documented 200 attachments regardless of REPRO_BENCH_SCALE (recall targets
are only meaningful at full corpus size); the scale knob trims repeats.

The timing queries disable the session tensor cache: this benchmark
measures the *uncached* regime (ANN probe vs per-statement inference) —
repeated-statement reuse is bench_udf_cache.py's experiment.
"""

import numpy as np
import pytest

from repro.bench.harness import (bench_scale, print_table, record_metric,
                                 scaled, time_call)
from repro.apps.multimodal import setup_multimodal
from repro.core.session import Session

K = 10
QUERY_TEXTS = [
    "receipt", "dog", "company logo", "beach", "KFC Receipt",
    "mountain", "cat", "STARBUCKS receipt",
]
INDEXED_CONFIG = {"tensor_cache": False}
EXACT_CONFIG = {"disable_rules": ("vector_index",), "tensor_cache": False}


def _topk_sql(text: str, k: int = K) -> str:
    return (f"SELECT attachment_id, image_text_similarity('{text}', images) "
            f"AS score FROM Attachments ORDER BY score DESC LIMIT {k}")


@pytest.fixture(scope="module")
def topk_session(fig2_dataset, clip_model):
    session = Session()
    setup_multimodal(session, fig2_dataset, clip_model,
                     vector_index=True, index_cells=16, index_nprobe=4)
    return session


class TestVectorTopK:
    def test_speedup_and_recall(self, benchmark, topk_session):
        """Acceptance: indexed top-k >= 3x faster at recall@10 >= 0.9."""
        session = topk_session
        indexed = [session.sql.query(_topk_sql(t), extra_config=INDEXED_CONFIG)
                   for t in QUERY_TEXTS]
        exact = [session.sql.query(_topk_sql(t), extra_config=EXACT_CONFIG)
                 for t in QUERY_TEXTS]
        for query in indexed:
            assert "IndexScan" in query.explain()
            query.run()                      # first run builds the index
        for query in exact:
            assert "IndexScan" not in query.explain()
            query.run()

        repeat = scaled(3)
        indexed_s = time_call(lambda: [q.run() for q in indexed], repeat=repeat)
        exact_s = time_call(lambda: [q.run() for q in exact], repeat=repeat)

        recalls = []
        for iq, eq in zip(indexed, exact):
            approx = set(iq.run().column("attachment_id").tolist())
            truth = set(eq.run().column("attachment_id").tolist())
            recalls.append(len(approx & truth) / K)
        recall = float(np.mean(recalls))
        speedup = exact_s / indexed_s

        print_table(
            f"vector top-{K} over {len(QUERY_TEXTS)} queries "
            f"(200 attachments, cells=16, nprobe=4)",
            ["path", "seconds (batch)", f"recall@{K}", "speedup"],
            [["exact scan + TopK", exact_s, 1.0, 1.0],
             ["CREATE VECTOR INDEX + IndexScan", indexed_s, recall, speedup]],
        )
        record_metric("vector_topk", speedup=round(speedup, 2),
                      recall=round(recall, 4),
                      exact_s=round(exact_s, 4), indexed_s=round(indexed_s, 4))
        assert recall >= 0.9
        # The speedup target assumes the documented corpus/repeat sizes; a
        # smoke run (scale < 1) only checks the indexed path stays ahead.
        assert speedup >= (3.0 if bench_scale() >= 1 else 1.3)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_indexed_matches_exact_when_probing_everything(self, benchmark,
                                                           fig2_dataset,
                                                           clip_model):
        """nprobe == cells probes every cell: results must match exactly."""
        session = Session()
        setup_multimodal(session, fig2_dataset, clip_model,
                         vector_index=True, index_cells=16, index_nprobe=16)
        for text in QUERY_TEXTS[:3]:
            got = session.sql.query(_topk_sql(text)).run()
            want = session.sql.query(_topk_sql(text),
                                     extra_config=EXACT_CONFIG).run()
            assert got.column("attachment_id").tolist() == \
                want.column("attachment_id").tolist()
            assert np.allclose(got.column("score"), want.column("score"))
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_indexed_run(self, benchmark, topk_session):
        query = topk_session.sql.query(_topk_sql("KFC Receipt"),
                                       extra_config=INDEXED_CONFIG)
        query.run()
        benchmark.pedantic(lambda: query.run(), rounds=5, iterations=2)

    def test_exact_run(self, benchmark, topk_session):
        query = topk_session.sql.query(_topk_sql("KFC Receipt"),
                                       extra_config=EXACT_CONFIG)
        query.run()
        benchmark.pedantic(lambda: query.run(), rounds=3, iterations=1)
