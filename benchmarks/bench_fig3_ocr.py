"""Fig 3 (left) — OCR: TDP lazy conversion vs Bulk + DuckDB (paper §5.2).

TDP pushes the timestamp filter below the ``extract_table`` TVF and converts
*one* document; the baseline bulk-converts all 100 documents, loads them into
MiniDuck, then runs a millisecond query. The paper reports TDP two orders of
magnitude faster overall, with conversion dominating the baseline and data
loading roughly equal on both sides.
"""

import pytest

from repro.apps.ocr import (
    MINIDUCK_QUERY,
    PAPER_QUERY,
    bulk_convert_all,
    load_into_miniduck,
    setup_ocr,
)
from repro.bench.harness import Timer, print_table, report_paper_vs_measured
from repro.core.session import Session


@pytest.fixture(scope="module")
def measurements(documents_100):
    # --- TDP path -----------------------------------------------------------
    session = Session()
    with Timer() as tdp_load:
        setup_ocr(session, documents_100)
    query = session.spark.query(PAPER_QUERY)
    with Timer() as tdp_query:
        tdp_result = query.run(toPandas=True)

    # --- Bulk + MiniDuck path ------------------------------------------------
    with Timer() as bulk_convert:
        extracted = bulk_convert_all(documents_100)
    with Timer() as bulk_load:
        duck = load_into_miniduck(extracted)
    with Timer() as duck_query:
        duck_result = duck.execute(MINIDUCK_QUERY)

    return {
        "tdp_load": tdp_load.seconds,
        "tdp_query": tdp_query.seconds,          # includes 1-image conversion
        "bulk_convert": bulk_convert.seconds,
        "bulk_load": bulk_load.seconds,
        "duck_query": duck_query.seconds,
        "tdp_result": tdp_result,
        "duck_result": duck_result,
    }


class TestFig3Left:
    def test_results_agree(self, benchmark, measurements):
        tdp = measurements["tdp_result"]
        duck = measurements["duck_result"]
        assert tdp["AVG(SepalLength)"][0] == pytest.approx(
            float(duck["AVG(SepalLength)"][0]), abs=1e-3)
        assert tdp["AVG(PetalLength)"][0] == pytest.approx(
            float(duck["AVG(PetalLength)"][0]), abs=1e-3)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_fig3_left_report(self, benchmark, measurements):
        m = measurements
        tdp_total = m["tdp_load"] + m["tdp_query"]
        bulk_total = m["bulk_convert"] + m["bulk_load"] + m["duck_query"]
        conversion_ratio = m["bulk_convert"] / max(m["tdp_query"], 1e-9)

        print_table(
            "Fig 3 (left): OCR performance comparison (seconds)",
            ["stage", "TDP", "Bulk + MiniDuck"],
            [
                ["data loading", m["tdp_load"], m["bulk_load"]],
                ["conversion", "(inside query)", m["bulk_convert"]],
                ["query", m["tdp_query"], m["duck_query"]],
                ["total", tdp_total, bulk_total],
            ],
        )
        report_paper_vs_measured("Fig 3 (left) OCR comparison", [
            {"metric": "conversion work ratio (bulk/lazy)",
             "paper": "~100x (2 orders of magnitude)",
             "measured": f"{conversion_ratio:.0f}x",
             "holds": conversion_ratio > 20},
            {"metric": "engine query time",
             "paper": "DuckDB few ms; TDP ~1 image conversion",
             "measured": f"duck {m['duck_query']*1e3:.1f} ms, "
                         f"tdp {m['tdp_query']*1e3:.1f} ms",
             "holds": m["duck_query"] < m["tdp_query"]},
            {"metric": "total speedup (TDP vs bulk)",
             "paper": ">10x end-to-end",
             "measured": f"{bulk_total / tdp_total:.1f}x",
             "holds": bulk_total > tdp_total},
        ])
        assert m["bulk_convert"] > m["tdp_query"] * 20
        assert bulk_total > tdp_total
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_tdp_ocr_query(self, benchmark, documents_100):
        session = Session()
        setup_ocr(session, documents_100)
        query = session.spark.query(PAPER_QUERY)
        benchmark.pedantic(query.run, rounds=3, iterations=1, warmup_rounds=1)

    def test_bulk_conversion(self, benchmark, documents_100):
        benchmark.pedantic(bulk_convert_all, args=(documents_100,),
                           rounds=1, iterations=1)
