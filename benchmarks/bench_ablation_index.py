"""Ablation A4 — approximate top-k indexing (the paper's stated future work).

Builds an IVF-Flat index over TinyCLIP image embeddings and compares exact
scan vs index probes for top-k similarity, reporting latency and recall@k.
"""

import numpy as np
import pytest

from repro.bench.harness import print_table, time_call
from repro.core.index import IVFFlatIndex
from repro.ml.models.clip import text_features
from repro.tcr.autograd import no_grad
from repro.tcr.tensor import Tensor

K = 10


@pytest.fixture(scope="module")
def embeddings(workload_images, clip_model):
    with no_grad():
        corpus = clip_model.encode_image(Tensor(workload_images.images)).data
        queries = clip_model.text_tower(
            Tensor(text_features([
                "receipt", "dog", "company logo", "beach", "KFC Receipt",
                "mountain", "cat", "STARBUCKS receipt",
            ]))).data
    return corpus.astype(np.float32), queries.astype(np.float32)


@pytest.fixture(scope="module")
def index(embeddings):
    corpus, _ = embeddings
    return IVFFlatIndex(num_cells=32, seed=0).build(corpus)


class TestIvfFlat:
    def test_recall_and_latency(self, benchmark, embeddings, index):
        corpus, queries = embeddings

        def exact_all():
            for q in queries:
                scores = corpus @ q
                np.argpartition(-scores, K - 1)[:K]

        rows = []
        exact_seconds = time_call(exact_all, repeat=5)
        for nprobe in [1, 4, 8]:
            seconds = time_call(
                lambda: [index.search(q, K, nprobe=nprobe) for q in queries],
                repeat=5,
            )
            recall = index.recall_at_k(queries, corpus, K, nprobe=nprobe)
            rows.append([f"IVF nprobe={nprobe}", seconds, recall])
        rows.append(["exact scan", exact_seconds, 1.0])
        print_table(
            f"A4: top-{K} search over {len(corpus)} embeddings",
            ["strategy", "seconds (8 queries)", f"recall@{K}"], rows,
        )
        # More probes -> higher recall; full probing must be near-exact.
        recalls = [r[2] for r in rows[:3]]
        assert recalls[1] >= recalls[0]
        assert recalls[2] >= 0.8
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_search_consistent_with_exact_when_probing_all(self, benchmark, embeddings):
        corpus, queries = embeddings
        index = IVFFlatIndex(num_cells=8, seed=1).build(corpus)
        for q in queries[:3]:
            ids, _ = index.search(q, K, nprobe=8)
            exact = np.argsort(-(corpus @ q))[:K]
            assert set(ids.tolist()) == set(exact.tolist())
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_index_search(self, benchmark, embeddings, index):
        _, queries = embeddings
        benchmark.pedantic(lambda: index.search(queries[0], K, nprobe=4),
                           rounds=5, iterations=2)

    def test_exact_scan(self, benchmark, embeddings):
        corpus, queries = embeddings

        def exact():
            scores = corpus @ queries[0]
            return np.argpartition(-scores, K - 1)[:K]

        benchmark.pedantic(exact, rounds=5, iterations=2)
