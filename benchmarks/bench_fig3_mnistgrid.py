"""Fig 3 (right) — MNISTGrid training: TDP query vs deep learning (§5.5).

Trains three approaches on the same grids with the same step budget and
reports test count-MSE over training:
  * TDP neurosymbolic query (CNN parsers + soft group-by/count)
  * CNN-Small — monolithic ~850K-parameter regressor
  * ResNet — the paper's ResNet-18 role, run as ResNet-8 by default
    (numpy/2-core budget; set REPRO_BENCH_SCALE to grow; full ResNet18 is
    available and unit-tested)

Paper shape: the TDP query converges much faster and to a far lower error
than both monolithic regressors.

Scale-down (recorded in EXPERIMENTS.md): the paper uses 5,000 train /
1,000 test grids and 40,000 single-grid iterations averaged over 5 runs;
here grids and steps shrink ~20x and training batches 8 grids per step via
the batched trainable query.
"""

import numpy as np
import pytest

from repro.apps import mnistgrid
from repro.baselines.regression import make_grid_regressor
from repro.bench.harness import print_table, report_paper_vs_measured, scaled
from repro.core.session import Session
from repro.datasets.mnist_grid import make_grids
from repro.ml.train import evaluate_mse, train_regressor

STEPS = scaled(900)
EVAL_EVERY = max(STEPS // 6, 1)
BATCH = 8


@pytest.fixture(scope="module")
def grid_data():
    train_set = make_grids(scaled(256), np.random.default_rng(0))
    test_set = make_grids(scaled(48), np.random.default_rng(1))
    return train_set, test_set


@pytest.fixture(scope="module")
def tdp_curve(grid_data):
    train_set, test_set = grid_data
    session = Session()
    app = mnistgrid.build_batched_app(session, batch_size=BATCH)
    curve = mnistgrid.train_batched(
        app, train_set, steps=STEPS, batch_size=BATCH, lr=1e-3,
        eval_every=EVAL_EVERY, eval_set=test_set,
    )
    return curve, app


def _baseline_curve(kind, grid_data, lr=1e-3, seed=0):
    train_set, test_set = grid_data
    model = make_grid_regressor(kind)
    curve = train_regressor(
        model, train_set.grids, train_set.counts, iterations=STEPS,
        batch_size=BATCH, lr=lr, seed=seed, eval_every=EVAL_EVERY,
        eval_fn=lambda m: evaluate_mse(m, test_set.grids, test_set.counts),
    )
    return curve


@pytest.fixture(scope="module")
def cnn_small_curve(grid_data):
    return _baseline_curve("cnn_small", grid_data)


@pytest.fixture(scope="module")
def resnet_curve(grid_data):
    return _baseline_curve("resnet8", grid_data)


class TestFig3Right:
    def test_fig3_right_curves(self, benchmark, tdp_curve, cnn_small_curve, resnet_curve):
        curve, _ = tdp_curve
        rows = []
        for (it, tdp_mse), (_, cnn_mse), (_, res_mse) in zip(
                curve, cnn_small_curve, resnet_curve):
            rows.append([it, tdp_mse, cnn_mse, res_mse])
        print_table(
            "Fig 3 (right): MNISTGrid test count-MSE vs training step",
            ["step", "TDP neurosymbolic query", "CNN-Small", "ResNet"],
            rows,
        )
        final_tdp = curve[-1][1]
        final_cnn = cnn_small_curve[-1][1]
        final_res = resnet_curve[-1][1]
        report_paper_vs_measured("Fig 3 (right) MNISTGrid training", [
            {"metric": "TDP final error lowest",
             "paper": "TDP converges close-to-zero; DL asymptotes higher",
             "measured": f"tdp={final_tdp:.3f} cnn={final_cnn:.3f} "
                         f"resnet={final_res:.3f}",
             "holds": final_tdp < final_cnn and final_tdp < final_res},
            {"metric": "TDP learns (error falls)",
             "paper": "converges very quickly",
             "measured": f"{curve[0][1]:.3f} -> {final_tdp:.3f}",
             "holds": final_tdp < curve[0][1]},
        ])
        assert final_tdp < final_cnn
        assert final_tdp < final_res
        assert final_tdp < curve[0][1]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_tdp_training_step(self, benchmark, grid_data):
        train_set, _ = grid_data
        session = Session()
        app = mnistgrid.build_batched_app(session, batch_size=BATCH)

        def step():
            mnistgrid.train_batched(app, train_set, steps=1, batch_size=BATCH,
                                    lr=1e-3)

        benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=1)


class TestExp2Generalization:
    """§5.5 Experiment 2: extract the trained digit parser, classify digits.

    The paper reports 98.15% MNIST accuracy without instance-level digit
    supervision; at our reduced training scale the parser must still land
    far above the 10% chance level, rising with REPRO_BENCH_SCALE.
    """

    def test_exp2_digit_parser_generalizes(self, benchmark, tdp_curve):
        from repro.datasets.digits import make_digits
        _, app = tdp_curve
        digits = make_digits(scaled(400), np.random.default_rng(2))
        accuracy = mnistgrid.digit_accuracy(app, digits.images, digits.digits)
        report_paper_vs_measured("Exp 2: extracted digit parser", [
            {"metric": "digit classification accuracy",
             "paper": "98.15% (40k iterations, 5k grids)",
             "measured": f"{accuracy:.1%} ({STEPS} steps, scaled data)",
             "holds": accuracy > 0.30},
        ])
        # The accuracy claim needs the documented step budget; a smoke run
        # (scale < 1) trains too briefly to clear chance robustly, so it
        # only reports the number (same policy as the speedup gates in
        # bench_vector_topk / bench_udf_cache).
        from repro.bench.harness import bench_scale
        if bench_scale() >= 1:
            assert accuracy > 0.30
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
