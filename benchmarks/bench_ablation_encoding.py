"""Ablation A1 — encodings earn their keep.

* Dictionary string predicates run on integer codes; the ablation decodes to
  Python strings first (what a naive engine would do).
* RLE aggregates sorted columns from run metadata without decompression.
* PE soft counts vs exact counts: the approximation error the paper's
  inference-time swap eliminates.
"""

import numpy as np
import pytest

from repro.bench.harness import print_table, scaled, time_call
from repro.core.session import Session
from repro.core.soft import soft_count
from repro.storage.encodings import PEEncoding, RunLengthEncoding

N_ROWS = scaled(200_000)


@pytest.fixture(scope="module")
def string_table():
    rng = np.random.default_rng(0)
    vocab = np.asarray([f"customer_{i:04d}" for i in range(500)], dtype=object)
    values = vocab[rng.integers(0, len(vocab), size=N_ROWS)]
    session = Session()
    session.sql.register_dict({"name": values}, "t")
    return session, values


class TestDictionaryPredicates:
    def test_code_filter_faster_than_decode_filter(self, benchmark, string_table):
        session, values = string_table
        query = session.spark.query(
            "SELECT COUNT(*) FROM t WHERE name = 'customer_0042'")

        def decoded_filter():
            # The naive plan: materialise Python strings, compare in numpy.
            return int((values.astype(str) == "customer_0042").sum())

        encoded_seconds = time_call(query.run, repeat=3)
        decoded_seconds = time_call(decoded_filter, repeat=3)
        assert query.run().scalar() == decoded_filter()
        print_table(
            "A1: string equality filter (200k rows)",
            ["strategy", "seconds"],
            [["dictionary codes (TDP)", encoded_seconds],
             ["decode-then-compare", decoded_seconds]],
        )
        # The full query (parse+plan+execute) must still beat raw decoding.
        assert encoded_seconds < decoded_seconds * 5
        benchmark.pedantic(query.run, rounds=3, iterations=1)

    def test_range_predicate_on_codes(self, benchmark, string_table):
        session, values = string_table
        got = session.spark.query(
            "SELECT COUNT(*) FROM t WHERE name < 'customer_0100'").run().scalar()
        want = int((values.astype(str) < "customer_0100").sum())
        assert got == want
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestRunLength:
    def test_rle_sum_without_decompression(self, benchmark):
        values = np.repeat(np.arange(scaled(2_000), dtype=np.float32), 100)
        encoded = RunLengthEncoding.encode(values)

        fast = encoded.encoding.sum_fast(encoded.tensor)
        assert fast == pytest.approx(float(values.sum()), rel=1e-6)

        fast_seconds = time_call(
            lambda: encoded.encoding.sum_fast(encoded.tensor), repeat=5)
        slow_seconds = time_call(lambda: float(encoded.decode().sum()), repeat=5)
        print_table(
            "A1: SUM over RLE column",
            ["strategy", "seconds"],
            [["run metadata (no decode)", fast_seconds],
             ["decompress then sum", slow_seconds]],
        )
        assert fast_seconds < slow_seconds
        benchmark.pedantic(
            lambda: encoded.encoding.sum_fast(encoded.tensor),
            rounds=5, iterations=1)


class TestPEApproximation:
    def test_soft_count_error_shrinks_with_confidence(self, benchmark):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 10, size=1000)
        exact = np.bincount(labels, minlength=10).astype(np.float32)
        rows = []
        for temperature in [1.0, 4.0, 16.0]:
            logits = np.eye(10, dtype=np.float32)[labels] * temperature
            pe = PEEncoding.encode(logits, logits=True)
            soft = soft_count(pe.tensor).data
            error = float(np.abs(soft - exact).mean())
            rows.append([temperature, error])
        print_table(
            "A1: soft vs exact count error by parser confidence",
            ["logit scale", "mean abs count error"], rows,
        )
        errors = [r[1] for r in rows]
        # Sharper probabilities -> smaller approximation error; the exact
        # swap at inference removes it entirely (validated in unit tests).
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.5
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
