"""Plan-cache + fusion benchmarks (the PR's execution-speed subsystem).

Three measurements:

* repeated ``tdp.sql.query(...)`` with the plan cache vs. cold
  parse→bind→optimize→lower on every call (TQP-style compiled-program reuse);
* fused Filter→Project execution vs. the unfused one-materialisation-per-
  operator cascade, on the A2 ablation workload shape;
* ``execute_many`` batches sharing one scan vs. statement-at-a-time runs
  with a device transfer each.
"""

import numpy as np

from repro.bench.harness import print_table, record_metric, scaled, time_call
from repro.core.session import Session

N_ROWS = scaled(300_000)

# Compile-heavy, execution-light: a long IN list is expensive to
# parse/bind/optimize but lowers to one vectorised np.isin mask.
CACHED_SQL = (
    "SELECT k, v + w AS a1, v * w AS a2 FROM t "
    f"WHERE k IN ({', '.join(str(i) for i in range(0, 80, 2))}) "
    "AND v > 0.1 AND w < 0.95"
)


def _session(n_rows):
    rng = np.random.default_rng(17)
    session = Session()
    session.sql.register_dict({
        "k": rng.integers(0, 50, size=n_rows),
        "v": rng.random(size=n_rows).astype(np.float32),
        "w": rng.random(size=n_rows).astype(np.float32),
    }, "t")
    return session


class TestPlanCache:
    def test_cached_beats_cold_compile(self, benchmark):
        """Acceptance: cached repeat execution ≥ 5× faster than compile+run."""
        session = _session(scaled(100))

        def cold():
            session.sql.query(CACHED_SQL,
                              extra_config={"plan_cache": False}).run()

        session.sql.query(CACHED_SQL).run()        # populate the cache

        def warm():
            session.sql.query(CACHED_SQL).run()

        cold_s = time_call(cold, repeat=9)
        warm_s = time_call(warm, repeat=9)
        print_table(
            "plan cache: compile+run vs cached run",
            ["path", "seconds", "speedup"],
            [["cold compile + run", cold_s, 1.0],
             ["plan-cache hit + run", warm_s, cold_s / warm_s]],
        )
        record_metric("plan_cache", speedup=round(cold_s / warm_s, 2),
                      cold_s=round(cold_s, 5), warm_s=round(warm_s, 5))
        assert warm_s * 5 <= cold_s
        benchmark.pedantic(warm, rounds=5, iterations=1, warmup_rounds=1)

    def test_cache_hit_rate_accounting(self, benchmark):
        session = _session(scaled(100))
        for _ in range(10):
            session.sql.query(CACHED_SQL).run()
        stats = session.plan_cache.stats
        assert stats["hits"] == 9 and stats["misses"] == 1
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestOperatorFusion:
    def test_fused_filter_project_beats_cascade(self, benchmark):
        """Acceptance: fused Filter→Project measurably faster than unfused."""
        session = _session(N_ROWS)
        sql = ("SELECT v + w AS s, v * 2 AS d FROM t "
               "WHERE v > 0.25 AND w < 0.75 AND v < w")
        fused_q = session.sql.query(sql)
        unfused_q = session.sql.query(sql, extra_config={"fuse_operators": False})
        assert fused_q.run(toPandas=True).equals(
            unfused_q.run(toPandas=True), atol=1e-5)
        fused_s = time_call(fused_q.run, repeat=5)
        unfused_s = time_call(unfused_q.run, repeat=5)
        print_table(
            f"operator fusion: Filter->Project on {N_ROWS} rows",
            ["pipeline", "seconds", "speedup"],
            [["unfused cascade", unfused_s, 1.0],
             ["fused single pass", fused_s, unfused_s / fused_s]],
        )
        assert fused_s < unfused_s
        benchmark.pedantic(fused_q.run, rounds=3, iterations=1, warmup_rounds=1)

    def test_fused_conjunct_filter(self, benchmark):
        session = _session(N_ROWS)
        q = session.sql.query(
            "SELECT k, v, w FROM t WHERE v > 0.2 AND w > 0.2 AND k > 5")
        benchmark.pedantic(q.run, rounds=3, iterations=1, warmup_rounds=1)


class TestBatchExecution:
    def test_execute_many_shared_scan(self, benchmark):
        session = _session(N_ROWS)
        statements = [
            "SELECT COUNT(*) FROM t",
            "SELECT SUM(v) FROM t",
            "SELECT AVG(w) FROM t",
            "SELECT MIN(v), MAX(w) FROM t",
        ]

        def individually():
            return [session.sql.query(s, device="cuda").run()
                    for s in statements]

        def batched():
            return session.execute_many(statements, device="cuda")

        single_s = time_call(individually, repeat=3)
        batch_s = time_call(batched, repeat=3)
        print_table(
            f"batch execution: 4 statements over {N_ROWS} rows (cuda transfers)",
            ["mode", "seconds"],
            [["statement-at-a-time", single_s], ["execute_many shared scan", batch_s]],
        )
        # Shared scans can't lose: the batch pays each transfer at most once.
        assert batch_s < single_s * 1.5
        benchmark.pedantic(batched, rounds=3, iterations=1, warmup_rounds=1)
