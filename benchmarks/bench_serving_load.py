"""Latency under load for the serving front door (ROADMAP item 3).

Three legs:

1. **Closed-loop client sweep** — 1/4/8 concurrent clients each stream
   statements back-to-back through the scheduler; per-request p50/p99 land
   in BENCH_RESULTS.json per client count. Service time is pinned by a
   sleeping UDF, so the numbers measure *queueing*, not machine speed.

2. **Overload + admission control (the gate)** — a burst far larger than
   the pool is submitted at once, with and without a queue-depth cap.
   Without admission control every request is admitted and p99 grows with
   the whole backlog (uncontrolled-queueing collapse: at 2x overload the
   last request waits behind everything). With ``max_queue_depth`` set,
   excess requests shed immediately with the typed ``ServerOverloaded``
   and the p99 of *admitted* requests stays bounded by the cap — the gate
   asserts shedding halves the admitted p99 and that the bound scales with
   the cap, not the burst.

3. **Async-surface bit-identity** — ``await session.aquery(...)`` over a
   mixed Fig-2 workload (top-k similarity + filters + aggregates) returns
   bit-identical results to the synchronous ``query().run()`` path.
"""

import asyncio
import time

import numpy as np

from repro.bench.harness import (percentiles, print_table,
                                 record_latency_metric, record_metric, scaled)
from repro.apps.multimodal import setup_multimodal
from repro.core.scheduler import QueryScheduler
from repro.core.session import Session
from repro.errors import ServerOverloaded
from repro.tcr.tensor import Tensor

SERVICE_SLEEP = 0.002     # seconds of pinned service time per statement
ROWS = 8
WORKERS = 2


def _serving_session() -> Session:
    session = Session()
    rng = np.random.default_rng(3)
    session.sql.register_dict(
        {"k": np.arange(ROWS, dtype=np.int64),
         "v": rng.normal(size=ROWS).astype(np.float32)},
        "t",
    )

    @session.udf("float", name="pause", deterministic=False)
    def pause(v: Tensor) -> Tensor:
        time.sleep(SERVICE_SLEEP)
        return v

    return session


STATEMENT = "SELECT SUM(pause(v)) FROM t"


def _client_latencies(scheduler, requests: int, client: str) -> list:
    """One closed-loop client: submit, wait, measure, repeat."""
    latencies = []
    for _ in range(requests):
        start = time.perf_counter()
        scheduler.submit(STATEMENT, client=client).result(timeout=60)
        latencies.append(time.perf_counter() - start)
    return latencies


class TestServingLoad:
    def test_latency_under_rising_client_counts(self, benchmark):
        """Closed-loop sweep: p50/p99 per client count into BENCH_RESULTS."""
        import threading
        per_client = scaled(12, minimum=6)
        rows = []
        for clients in (1, 4, 8):
            session = _serving_session()
            scheduler = QueryScheduler(session, workers=WORKERS,
                                       coalesce=False)
            all_latencies = []
            threads = []
            errors = []

            def run(cid):
                try:
                    all_latencies.extend(
                        _client_latencies(scheduler, per_client, f"c{cid}"))
                except BaseException as exc:   # noqa: BLE001
                    errors.append(exc)

            start = time.perf_counter()
            for cid in range(clients):
                thread = threading.Thread(target=run, args=(cid,))
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(timeout=120)
            elapsed = time.perf_counter() - start
            scheduler.shutdown()
            assert not errors, errors[0]
            pcts = percentiles([s * 1e3 for s in all_latencies])
            rows.append([clients, len(all_latencies),
                         len(all_latencies) / elapsed,
                         pcts["p50"], pcts["p99"]])
            record_latency_metric(f"serving_load_clients_{clients}",
                                  all_latencies, clients=clients,
                                  workers=WORKERS)
        print_table(
            f"closed-loop serving load (workers={WORKERS}, "
            f"service={SERVICE_SLEEP * 1e3:.0f}ms)",
            ["clients", "requests", "req/s", "p50 ms", "p99 ms"], rows)
        # More clients than workers queue up: p99 must reflect that
        # (sanity that the sweep actually exercised contention).
        assert rows[-1][4] >= rows[0][4]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_admission_control_bounds_p99_under_overload(self, benchmark):
        """The gate: with shedding on, overload p99 stays bounded by the
        queue cap instead of collapsing with the backlog size."""
        burst = scaled(200, minimum=48)
        cap = 4

        def overload(max_queue_depth):
            session = _serving_session()
            scheduler = QueryScheduler(session, workers=WORKERS,
                                       coalesce=False,
                                       max_queue_depth=max_queue_depth)
            starts = {}
            latencies = []
            shed = 0
            futures = []
            for i in range(burst):
                try:
                    future = scheduler.submit(STATEMENT, client=f"c{i % 4}")
                except ServerOverloaded:
                    shed += 1
                    continue
                starts[id(future)] = time.perf_counter()
                futures.append(future)
            for future in futures:
                future.result(timeout=120)
                latencies.append(time.perf_counter() - starts[id(future)])
            stats = scheduler.stats
            scheduler.shutdown()
            return latencies, shed, stats

        uncontrolled, shed_off, _ = overload(None)
        bounded, shed_on, stats = overload(cap)

        p_unc = percentiles([s * 1e3 for s in uncontrolled])
        p_bnd = percentiles([s * 1e3 for s in bounded])
        print_table(
            f"overload burst={burst} (workers={WORKERS}, cap={cap}, "
            f"service={SERVICE_SLEEP * 1e3:.0f}ms)",
            ["mode", "admitted", "shed", "p50 ms", "p99 ms"],
            [["uncontrolled queue", len(uncontrolled), shed_off,
              p_unc["p50"], p_unc["p99"]],
             [f"max_queue_depth={cap}", len(bounded), shed_on,
              p_bnd["p50"], p_bnd["p99"]]],
        )
        record_metric(
            "serving_admission",
            burst=burst, workers=WORKERS, max_queue_depth=cap,
            uncontrolled_p99_ms=round(p_unc["p99"], 3),
            bounded_p99_ms=round(p_bnd["p99"], 3),
            shed=shed_on,
            p99_ratio=round(p_unc["p99"] / max(p_bnd["p99"], 1e-9), 2),
        )
        assert shed_off == 0
        assert shed_on > 0
        assert stats["shed"] == shed_on
        # The collapse gate: every uncontrolled request waits behind the
        # whole backlog, so its p99 tracks the burst size; the capped
        # queue's p99 tracks (cap + workers) service times. Shedding must
        # at least halve the admitted p99 at this burst/cap ratio, and the
        # bound must scale with the cap (generous 8x slack for CI timer
        # jitter), not the burst.
        assert p_bnd["p99"] <= p_unc["p99"] / 2.0
        assert p_bnd["p99"] <= (cap + WORKERS) * SERVICE_SLEEP * 1e3 * 8.0
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_aquery_bit_identical_on_fig2_workload(self, benchmark,
                                                   fig2_dataset, clip_model):
        """``aquery`` returns byte-for-byte what ``query().run()`` returns
        on the mixed Fig-2 workload (acceptance criterion)."""
        config = {"disable_rules": ("vector_index",)}
        statements = []
        for text in ["KFC Receipt", "beach sunset",
                     "a photo of a dog"][:scaled(3, minimum=2)]:
            statements.append(
                f"SELECT attachment_id, image_text_similarity('{text}', images) "
                f"AS score FROM Attachments ORDER BY score DESC LIMIT 10")
        statements.append(
            "SELECT COUNT(*) FROM Attachments "
            "WHERE image_text_similarity('receipt', images) > 0.8")
        statements.append("SELECT COUNT(*) FROM Attachments")

        sync_session = Session()
        setup_multimodal(sync_session, fig2_dataset, clip_model)
        sync_results = [sync_session.sql.query(s, extra_config=config).run()
                        for s in statements]

        async_session = Session()
        setup_multimodal(async_session, fig2_dataset, clip_model)

        async def run():
            return await async_session.aserve(statements * 2,
                                              extra_config=config)

        async_results = asyncio.run(run())
        for i, result in enumerate(async_results):
            expected = sync_results[i % len(statements)]
            assert result.column_names == expected.column_names
            for name in expected.column_names:
                np.testing.assert_array_equal(
                    np.asarray(result.column(name)),
                    np.asarray(expected.column(name)))
        record_metric("serving_async_identity",
                      statements=len(async_results), bit_identical=True)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
