"""Concurrent-serving benchmark (the PR 4 scheduler subsystem).

Serves a mixed Fig 2 workload — top-k similarity, similarity filters /
aggregates, and vector-index DDL — from four concurrent client streams
against ``Session.serve(workers=4)``, and compares against strictly
serialized execution of the same statement list.

Regime: the session runs with ``tensor_cache_bytes=0``, modeling the
eviction-bound serving regime where the working set exceeds the
materialization cache and every statement pays its own inference (the same
deliberately-uncached regime ``bench_fig2_multimodal`` measures). What the
scheduler then buys, on any core count, is *work elimination*:

* identical in-flight statements coalesce into one execution
  (request-collapse against thundering herds), and
* concurrent queries' encoder micro-batches for the same (model, device)
  rendezvous in the inference batcher — N queries streaming the same corpus
  pay one forward pass per row instead of N.

Both mechanisms preserve results bit-for-bit: a coalesced duplicate gets
the leader's result, and deduplicated encodes are the *same* single
forward pass serialized execution would run (per-request shapes are never
changed — batch fusion that stacks distinct requests is off by default
precisely because stacked BLAS shapes can flip float LSBs).

Acceptance: >= 2x throughput at workers=4 over serialized execution, with
bit-identical results (ids, counts and raw float scores).
"""

import time

import numpy as np

from repro.bench.harness import (print_table, record_latency_metric,
                                 record_metric, scaled)
from repro.apps.multimodal import setup_multimodal
from repro.core.scheduler import QueryScheduler
from repro.core.session import Session

WORKERS = 4
CLIENTS = 4

# Exact plans only: with the vector_index rewrite left on, whether a query
# compiled before or after the stream's CREATE INDEX would pick the ANN
# access path depends on scheduling, and ANN candidate sets are not
# guaranteed recall-1.0 in general. Exact plans make serialized and
# concurrent execution compute identical operator trees, so the bit-identity
# gate is meaningful. (DDL still exercises concurrent epoch bumps and plan
# invalidation.)
CONFIG = {"disable_rules": ("vector_index",)}

TOPK_TEXTS = ["KFC Receipt", "beach sunset", "a photo of a dog",
              "STARBUCKS logo", "mountain hike", "UBER Receipt"]
FILTER_TEXTS = ["receipt", "logo"]


def _client_statements():
    """One client's statement stream (every client runs the same script,
    like a replayed load-test request log)."""
    statements = []
    for text in TOPK_TEXTS[:scaled(6, minimum=2)]:
        statements.append(
            f"SELECT attachment_id, image_text_similarity('{text}', images) "
            f"AS score FROM Attachments ORDER BY score DESC LIMIT 10")
    for text in FILTER_TEXTS[:scaled(2, minimum=1)]:
        statements.append(
            f"SELECT COUNT(*) FROM Attachments "
            f"WHERE image_text_similarity('{text}', images) > 0.8")
    statements.append("SELECT COUNT(*) FROM Attachments")
    statements.append(
        "SELECT MAX(attachment_id) FROM Attachments WHERE attachment_id < 150")
    return statements


def _workload():
    """CLIENTS concurrent copies of the stream, interleaved round-robin,
    with index DDL mixed in (single statements, not per client)."""
    per_client = _client_statements()
    flat = [per_client[i] for i in range(len(per_client))
            for _ in range(CLIENTS)]
    ddl = [
        (len(flat) // 3,
         "CREATE VECTOR INDEX serving_ivf ON Attachments(images) "
         "WITH (cells=16, nprobe=4)"),
        (2 * len(flat) // 3, "SHOW INDEXES"),
        (len(flat), "DROP INDEX IF EXISTS serving_ivf"),
    ]
    ddl_positions = set()
    for offset, (pos, statement) in enumerate(ddl):
        flat.insert(pos + offset, statement)
        ddl_positions.add(pos + offset)
    return flat, ddl_positions


def _build_session(dataset, model) -> Session:
    session = Session(tensor_cache_bytes=0)
    setup_multimodal(session, dataset, model)
    return session


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _assert_identical(serial, concurrent, ddl_positions):
    compared = 0
    for i, (a, b) in enumerate(zip(serial, concurrent)):
        if i in ddl_positions:
            continue             # DDL emits status text, ordering-dependent
        sa, sb = _snapshot(a), _snapshot(b)
        assert list(sa) == list(sb)
        for name in sa:
            np.testing.assert_array_equal(sa[name], sb[name])
        compared += 1
    return compared


class TestConcurrentServing:
    def test_throughput_and_bit_identity(self, benchmark, fig2_dataset,
                                         clip_model):
        """Acceptance gate: >= 2x throughput at workers=4, bit-identical."""
        workload, ddl_positions = _workload()

        serial_session = _build_session(fig2_dataset, clip_model)
        serial, serial_latencies = [], []
        start = time.perf_counter()
        for s in workload:
            t0 = time.perf_counter()
            serial.append(serial_session.sql.query(s, extra_config=CONFIG).run())
            serial_latencies.append(time.perf_counter() - t0)
        t_serial = time.perf_counter() - start

        serve_session = _build_session(fig2_dataset, clip_model)
        scheduler = QueryScheduler(serve_session, workers=WORKERS)
        start = time.perf_counter()
        concurrent = scheduler.map(workload, extra_config=CONFIG)
        t_concurrent = time.perf_counter() - start
        stats = scheduler.stats
        scheduler.shutdown()

        compared = _assert_identical(serial, concurrent, ddl_positions)
        assert compared >= len(workload) - len(ddl_positions)

        speedup = t_serial / max(t_concurrent, 1e-9)
        qps_serial = len(workload) / t_serial
        qps_concurrent = len(workload) / t_concurrent
        print_table(
            f"concurrent serving: {len(workload)} statements, {CLIENTS} "
            f"client streams, eviction-bound regime",
            ["mode", "seconds", "stmts/s", "speedup"],
            [["serialized", t_serial, qps_serial, 1.0],
             [f"serve(workers={WORKERS})", t_concurrent, qps_concurrent,
              speedup]],
        )
        print(f"scheduler: executed={stats['executed']} "
              f"coalesced={stats['coalesced']} "
              f"batcher={stats['batcher']}")
        record_metric(
            "concurrent_serving",
            speedup=round(speedup, 2), workers=WORKERS,
            statements=len(workload),
            serial_s=round(t_serial, 3), concurrent_s=round(t_concurrent, 3),
            coalesced=stats["coalesced"],
            encoder_joins=stats["batcher"]["joins"],
        )
        # Per-statement latency shape, both modes: serialized from wall-clock
        # samples, served from the engine's own query.latency_seconds
        # histogram (exercising the Session.metrics path end to end).
        record_latency_metric("serialized_serving_latency", serial_latencies)
        served = serve_session.metrics.snapshot().get("query.latency_seconds", {})
        if served.get("count"):
            record_metric(
                "concurrent_serving_latency",
                count=served["count"],
                mean_ms=round(served["mean"] * 1e3, 3),
                p50=round(served["p50"] * 1e3, 3),
                p95=round(served["p95"] * 1e3, 3),
                p99=round(served["p99"] * 1e3, 3),
            )
        assert stats["coalesced"] > 0
        assert speedup >= 2.0
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_distinct_statements_share_inference(self, benchmark,
                                                 fig2_dataset, clip_model):
        """With no duplicate statements at all, concurrent queries still
        share corpus encodes through the inference batcher, bit-identically
        (every encode stays a per-request-shaped forward)."""
        statements = [
            f"SELECT attachment_id, image_text_similarity('{text}', images) "
            f"AS score FROM Attachments ORDER BY score DESC LIMIT 10"
            for text in TOPK_TEXTS[:4]
        ]
        serial_session = _build_session(fig2_dataset, clip_model)
        start = time.perf_counter()
        serial = [serial_session.sql.query(s, extra_config=CONFIG).run()
                  for s in statements]
        t_serial = time.perf_counter() - start

        serve_session = _build_session(fig2_dataset, clip_model)
        scheduler = QueryScheduler(serve_session, workers=WORKERS)
        start = time.perf_counter()
        concurrent = scheduler.map(statements, extra_config=CONFIG)
        t_concurrent = time.perf_counter() - start
        stats = scheduler.stats
        scheduler.shutdown()

        _assert_identical(serial, concurrent, set())
        assert stats["coalesced"] == 0            # nothing to coalesce...
        assert stats["batcher"]["joins"] > 0      # ...sharing is the batcher
        print_table(
            "distinct-statement serving (batcher dedup only)",
            ["mode", "seconds", "encoder joins"],
            [["serialized", t_serial, 0],
             [f"serve(workers={WORKERS})", t_concurrent,
              stats["batcher"]["joins"]]],
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_serving_with_cache_matches_serial(self, benchmark, fig2_dataset,
                                               clip_model):
        """Default (cache-on) serving returns the serialized results too;
        the tensor cache and the batcher compose."""
        statements = _client_statements() * 2
        serial_session = Session()
        setup_multimodal(serial_session, fig2_dataset, clip_model)
        serial = [serial_session.sql.query(s, extra_config=CONFIG).run()
                  for s in statements]

        serve_session = Session()
        setup_multimodal(serve_session, fig2_dataset, clip_model)
        concurrent = serve_session.serve(statements, workers=WORKERS,
                                         extra_config=CONFIG)
        for a, b in zip(serial, concurrent):
            sa, sb = _snapshot(a), _snapshot(b)
            assert list(sa) == list(sb)
            for name in sa:
                np.testing.assert_allclose(sa[name], sb[name], rtol=1e-6)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
