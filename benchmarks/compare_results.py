"""CI perf-regression gate: BENCH_RESULTS.json vs the committed baseline.

The benchmarks job produces ``BENCH_RESULTS.json`` (see ``run_all.py``);
this script compares its *headline* metrics against
``benchmarks/BENCH_BASELINE.json`` and fails the job when a metric falls
outside its tolerance band. Only machine-independent headline numbers are
baselined — speedup/recall/shed ratios and counts, never absolute wall
times, which vary with the runner. A metric present in the baseline but
absent from the results is reported as a SKIP, not a failure, so retired
benches degrade loudly-but-green until the baseline is re-anchored.

Baseline entry shape (per metric group, per key)::

    "plan_cache": {
        "warm_speedup": {"value": 5.0, "direction": "higher", "rtol": 0.25}
    }

``direction`` is which way is *better*: ``higher`` fails when the observed
value drops below ``value * (1 - rtol)``; ``lower`` fails when it rises
above ``value * (1 + rtol)``; ``equals`` requires an exact match (counts,
booleans). ``rtol`` defaults to 0.25 — generous on purpose: the gate is
for regressions that survive run_all's one retry, not for timer jitter.

Re-baselining (after an intentional perf change)::

    python benchmarks/run_all.py --scale 0.2 --output BENCH_RESULTS.json
    python benchmarks/compare_results.py BENCH_RESULTS.json --rebaseline

then review the ``BENCH_BASELINE.json`` diff and commit it with the change
that moved the numbers. ``--rebaseline`` only refreshes ``value`` fields
for metrics already in the baseline; adding or removing gated metrics is a
hand edit so the reviewed diff states intent.

Usage::

    python benchmarks/compare_results.py BENCH_RESULTS.json
    python benchmarks/compare_results.py BENCH_RESULTS.json --baseline PATH
"""

from __future__ import annotations

import argparse
import json
import numbers
import os
import sys
from typing import List

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BENCH_BASELINE.json")
_DIRECTIONS = ("higher", "lower", "equals")
DEFAULT_RTOL = 0.25


def _load(path: str):
    with open(path) as handle:
        return json.load(handle)


def _band(value, direction: str, rtol: float) -> str:
    if direction == "higher":
        return f">= {value * (1 - rtol):.4g}"
    if direction == "lower":
        return f"<= {value * (1 + rtol):.4g}"
    return f"== {value!r}"


def _within(observed, value, direction: str, rtol: float) -> bool:
    if direction == "equals":
        return observed == value
    if not isinstance(observed, numbers.Real) or isinstance(observed, bool):
        return False
    if direction == "higher":
        return observed >= value * (1 - rtol)
    return observed <= value * (1 + rtol)


def compare(results: dict, baseline: dict) -> List[dict]:
    """One row per baselined metric: {group, key, status, ...}."""
    rows: List[dict] = []
    metrics = results.get("metrics", {})
    for group, keys in sorted(baseline.get("metrics", {}).items()):
        observed_group = metrics.get(group)
        for key, spec in sorted(keys.items()):
            value = spec["value"]
            direction = spec.get("direction", "higher")
            if direction not in _DIRECTIONS:
                raise ValueError(
                    f"{group}.{key}: direction must be one of {_DIRECTIONS}, "
                    f"got {direction!r}")
            rtol = spec.get("rtol", DEFAULT_RTOL)
            row = {"group": group, "key": key, "expected": value,
                   "direction": direction,
                   "band": _band(value, direction, rtol)}
            if observed_group is None or key not in observed_group:
                row.update(status="SKIP", observed=None)
            else:
                observed = observed_group[key]
                ok = _within(observed, value, direction, rtol)
                row.update(status="PASS" if ok else "FAIL", observed=observed)
            rows.append(row)
    return rows


def rebaseline(results: dict, baseline: dict) -> int:
    """Refresh ``value`` fields in-place from results; count updated."""
    updated = 0
    metrics = results.get("metrics", {})
    for group, keys in baseline.get("metrics", {}).items():
        for key, spec in keys.items():
            observed = metrics.get(group, {}).get(key)
            if observed is not None and observed != spec["value"]:
                spec["value"] = observed
                updated += 1
    return updated


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("results", help="BENCH_RESULTS.json to check")
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--rebaseline", action="store_true",
                        help="rewrite baseline values from these results "
                             "instead of gating")
    args = parser.parse_args(argv)
    try:
        results = _load(args.results)
        baseline = _load(args.baseline)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"[compare_results] cannot load inputs: {exc}\n")
        return 2

    if args.rebaseline:
        updated = rebaseline(results, baseline)
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[compare_results] re-baselined {updated} value(s) into "
              f"{args.baseline}; review the diff before committing")
        return 0

    rows = compare(results, baseline)
    width = max((len(f"{r['group']}.{r['key']}") for r in rows), default=10)
    for row in rows:
        name = f"{row['group']}.{row['key']}"
        observed = "absent" if row["observed"] is None else row["observed"]
        print(f"[compare_results] {row['status']:4} {name:<{width}}  "
              f"observed={observed}  band={row['band']}")
    failed = [r for r in rows if r["status"] == "FAIL"]
    skipped = [r for r in rows if r["status"] == "SKIP"]
    print(f"[compare_results] {len(rows) - len(failed) - len(skipped)} passed, "
          f"{len(failed)} failed, {len(skipped)} skipped "
          f"(skips = metric absent from results)")
    if failed:
        for row in failed:
            sys.stderr.write(
                f"[compare_results] REGRESSION {row['group']}.{row['key']}: "
                f"observed {row['observed']}, required {row['band']} "
                f"(baseline {row['expected']}); if intentional, re-baseline "
                f"per the module docstring\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
