"""Ablation A3 — optimizer rules (predicate ordering + pruning).

The Fig 3-left effect rests on the engine evaluating cheap metadata
predicates before neural UDF predicates and never dragging image columns
through operators that don't need them. This bench disables those rules and
measures the regression.
"""

import numpy as np
import pytest

from repro.apps.multimodal import setup_multimodal
from repro.bench.harness import print_table, scaled, time_call
from repro.core.session import Session
from repro.datasets.attachments import make_attachments


@pytest.fixture(scope="module")
def selective_session(clip_model):
    dataset = make_attachments(scaled(150), scaled(75), scaled(75),
                               rng=np.random.default_rng(5))
    session = Session()
    setup_multimodal(session, dataset, clip_model)
    return session, dataset


# The metadata predicate keeps ~10% of rows; written UDF-first so only the
# optimizer's cost reordering can save the work.
SELECTIVE_SQL = (
    'SELECT COUNT(*) FROM Attachments '
    'WHERE image_text_similarity("receipt", images) > 0.8 '
    'AND attachment_id < {cutoff}'
)


class TestPredicateReordering:
    def test_reordering_prunes_udf_work(self, benchmark, selective_session):
        session, dataset = selective_session
        cutoff = len(dataset) // 10
        sql = SELECTIVE_SQL.format(cutoff=cutoff)

        optimized = session.spark.query(sql)
        unoptimized = session.spark.query(
            sql, extra_config={"disable_rules": ("pushdown",)})

        assert optimized.run().scalar() == unoptimized.run().scalar()

        optimized_s = time_call(optimized.run, repeat=3)
        unoptimized_s = time_call(unoptimized.run, repeat=3)
        print_table(
            "A3: UDF predicate with 10%-selective metadata filter",
            ["plan", "seconds"],
            [["cost-reordered (cheap filter first)", optimized_s],
             ["as written (UDF first)", unoptimized_s]],
        )
        # The UDF should now only see ~10% of the images.
        assert optimized_s < unoptimized_s
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_optimized_query(self, benchmark, selective_session):
        session, dataset = selective_session
        q = session.spark.query(SELECTIVE_SQL.format(cutoff=len(dataset) // 10))
        benchmark.pedantic(q.run, rounds=3, iterations=1, warmup_rounds=1)


class TestProjectionPruning:
    def test_pruning_avoids_carrying_images(self, benchmark, selective_session):
        session, dataset = selective_session
        # COUNT over a metadata filter: with pruning the image column is
        # never gathered; without it every surviving image row is copied.
        sql = (f"SELECT COUNT(*) FROM Attachments "
               f"WHERE attachment_id < {len(dataset) // 2}")
        pruned = session.spark.query(sql)
        unpruned = session.spark.query(
            sql, extra_config={"disable_rules": ("prune",)})
        assert pruned.run().scalar() == unpruned.run().scalar()
        pruned_s = time_call(pruned.run, repeat=5)
        unpruned_s = time_call(unpruned.run, repeat=5)
        print_table(
            "A3: projection pruning around a 4-d image column",
            ["plan", "seconds"],
            [["pruned (images dropped at scan)", pruned_s],
             ["unpruned (images gathered through filter)", unpruned_s]],
        )
        assert pruned_s < unpruned_s
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
