"""Ablation A2 — operator implementation choices (flags + heuristics).

The paper (§2): "For each physical operator, we can have more than one
[tensor] implementation, and at compilation time we use a mix of flags and
heuristics to pick which one to use." These benches measure the choices the
planner makes: hash vs sort group-by across key cardinalities, fused top-k
vs sort+limit, and the device micro-batch sweep behind the Fig 2 gap.
"""

import numpy as np

from repro.bench.harness import print_table, record_metric, scaled, time_call
from repro.core.session import Session

N_ROWS = scaled(300_000)


def _session_with_keys(cardinality):
    rng = np.random.default_rng(cardinality)
    session = Session()
    session.sql.register_dict({
        "k": rng.integers(0, cardinality, size=N_ROWS),
        "v": rng.normal(size=N_ROWS).astype(np.float32),
    }, "t")
    return session


class TestGroupByImplementations:
    def test_hash_vs_sort_across_cardinalities(self, benchmark):
        sql = "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k"
        rows = []
        for cardinality in [10, 1_000, 100_000]:
            session = _session_with_keys(cardinality)
            hash_q = session.spark.query(sql, extra_config={"groupby_impl": "hash"})
            sort_q = session.spark.query(sql, extra_config={"groupby_impl": "sort"})
            hash_s = time_call(hash_q.run, repeat=3)
            sort_s = time_call(sort_q.run, repeat=3)
            rows.append([cardinality, hash_s, sort_s])
        print_table(
            f"A2: group-by implementations ({N_ROWS} rows)",
            ["key cardinality", "hash (s)", "sort (s)"], rows,
        )
        # Both implementations must agree; times are informative.
        session = _session_with_keys(1_000)
        hash_out = session.spark.query(
            sql + " ORDER BY k", extra_config={"groupby_impl": "hash"}
        ).run(toPandas=True)
        sort_out = session.spark.query(
            sql + " ORDER BY k", extra_config={"groupby_impl": "sort"}
        ).run(toPandas=True)
        assert hash_out.equals(sort_out, atol=1e-2)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_groupby_hash(self, benchmark):
        session = _session_with_keys(1_000)
        q = session.spark.query("SELECT k, COUNT(*) FROM t GROUP BY k",
                                extra_config={"groupby_impl": "hash"})
        benchmark.pedantic(q.run, rounds=3, iterations=1, warmup_rounds=1)

    def test_groupby_sort(self, benchmark):
        session = _session_with_keys(1_000)
        q = session.spark.query("SELECT k, COUNT(*) FROM t GROUP BY k",
                                extra_config={"groupby_impl": "sort"})
        benchmark.pedantic(q.run, rounds=3, iterations=1, warmup_rounds=1)


def _session_with_strings(n=None):
    n = N_ROWS if n is None else n
    rng = np.random.default_rng(7)
    vocab = np.asarray(
        [f"word{i:03d}ing" if i % 3 else f"Apple{i:03d}" for i in range(200)],
        dtype=object)
    session = Session()
    session.sql.register_dict({
        "s": vocab[rng.integers(0, len(vocab), size=n)],
        "x": rng.integers(-50, 50, size=n),
        "y": rng.normal(size=n).astype(np.float32),
    }, "t")
    return session


class TestExprCompilation:
    """compile_exprs on vs. off — the TQP-style codegen ablation.

    The interpreter re-materialises UPPER/LOWER results per batch (decode,
    ``np.char`` transform, re-encode), while the compiled kernels transform
    the dictionary once and gather codes; both paths share the char-code
    LIKE kernel. Cross-run caches are disabled so the measurement is the
    expression work itself.
    """

    STRING_SQL = ("SELECT COUNT(*) AS c FROM t WHERE UPPER(s) LIKE 'A%1%' "
                  "OR (LENGTH(s) > 8 AND LOWER(s) LIKE '%2%ing')")
    NUMERIC_SQL = ("SELECT COUNT(*) AS c FROM t WHERE (x * 2 + y) / 3 > 1 "
                   "AND x % 7 != 2 AND y BETWEEN -1.5 AND 1.5")
    OFF = {"compile_exprs": False, "tensor_cache": False}
    ON = {"compile_exprs": True, "tensor_cache": False}

    def _time_pair(self, session, sql):
        off_q = session.spark.query(sql, extra_config=self.OFF)
        on_q = session.spark.query(sql, extra_config=self.ON)
        assert off_q.run(toPandas=True).equals(on_q.run(toPandas=True))
        off_s = time_call(off_q.run, repeat=5)
        on_s = time_call(on_q.run, repeat=5)
        return off_s, on_s

    def test_string_predicates_speedup(self, benchmark):
        session = _session_with_strings()
        off_s, on_s = self._time_pair(session, self.STRING_SQL)
        speedup = off_s / on_s
        print_table(
            f"A2: LIKE/UPPER-heavy filter over {N_ROWS} rows",
            ["engine", "seconds"],
            [["interpreter", off_s], ["compiled kernels", on_s],
             ["speedup", f"{speedup:.2f}x"]],
        )
        record_metric("expr_compile_string", interpreter_s=round(off_s, 5),
                      compiled_s=round(on_s, 5), speedup=round(speedup, 2))
        assert speedup >= 1.5, f"string-kernel speedup {speedup:.2f}x < 1.5x"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_numeric_statements_no_regression(self, benchmark):
        session = _session_with_strings()
        off_s, on_s = self._time_pair(session, self.NUMERIC_SQL)
        print_table(
            f"A2: numeric-only filter over {N_ROWS} rows",
            ["engine", "seconds"],
            [["interpreter", off_s], ["compiled kernels", on_s]],
        )
        record_metric("expr_compile_numeric", interpreter_s=round(off_s, 5),
                      compiled_s=round(on_s, 5),
                      speedup=round(off_s / on_s, 2))
        # Codegen must never cost on the numeric hot path (noise margin).
        assert on_s <= off_s * 1.15, (on_s, off_s)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestTopKImplementations:
    def test_partition_vs_full_sort(self, benchmark):
        session = _session_with_keys(10)
        sql = "SELECT v FROM t ORDER BY v DESC LIMIT 10"
        fused = session.spark.query(sql)                       # TopKExec
        full = session.spark.query(sql, extra_config={"topk_impl": "sort"})
        fused_s = time_call(fused.run, repeat=3)
        full_s = time_call(full.run, repeat=3)
        print_table(
            f"A2: top-10 of {N_ROWS} rows",
            ["implementation", "seconds"],
            [["argpartition top-k", fused_s], ["sort + limit", full_s]],
        )
        assert fused.run(toPandas=True).equals(full.run(toPandas=True))
        assert fused_s < full_s * 1.5      # partition never much worse
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_topk_partition(self, benchmark):
        session = _session_with_keys(10)
        q = session.spark.query("SELECT v FROM t ORDER BY v DESC LIMIT 10")
        benchmark.pedantic(q.run, rounds=3, iterations=1, warmup_rounds=1)


class TestDeviceBatchSweep:
    def test_udf_batch_amortisation(self, benchmark):
        """The Fig 2 mechanism, isolated: same UDF, different micro-batches."""
        from repro.core.expr_eval import _invoke_batched
        from repro.core.udf import UdfInfo, parse_output_schema
        from repro.tcr.device import Device, _PROFILES, DeviceProfile
        from repro.tcr import nn
        from repro.tcr.tensor import Tensor

        model = nn.Sequential(nn.Linear(64, 128), nn.ReLU(), nn.Linear(128, 1))
        info = UdfInfo("f", lambda x: model(x).reshape(-1),
                       parse_output_schema("float"), [])
        data = Tensor(np.random.default_rng(0).normal(
            size=(scaled(4096), 64)).astype(np.float32))

        rows = []
        for batch_rows in [4, 32, 256, 2048]:
            profile = DeviceProfile(exec_batch_rows=batch_rows,
                                    supports_large_fusion=True)
            _PROFILES["cuda"] = profile
            try:
                device = Device("cuda")
                seconds = time_call(
                    lambda: _invoke_batched(info, [data], data.shape[0], device),
                    repeat=3,
                )
            finally:
                _PROFILES["cuda"] = DeviceProfile(exec_batch_rows=512,
                                                  supports_large_fusion=True)
            rows.append([batch_rows, seconds])
        print_table(
            "A2: UDF execution time vs micro-batch size (the Fig 2 mechanism)",
            ["batch rows", "seconds"], rows,
        )
        times = [r[1] for r in rows]
        # Bigger batches amortise dispatch overhead monotonically (roughly).
        assert times[-1] < times[0]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
