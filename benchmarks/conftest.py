"""Shared benchmark fixtures: datasets and pretrained models, built once."""

import numpy as np
import pytest

from repro.datasets.attachments import make_attachments
from repro.datasets.documents import make_documents
from repro.ml.models.clip import load_pretrained_clip


@pytest.fixture(scope="session")
def fig2_dataset():
    """The Fig 2 dataset: 100 photographs / 50 receipts / 50 logos."""
    return make_attachments(100, 50, 50, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def clip_model(fig2_dataset):
    """TinyCLIP trained on the Fig 2 dataset (cached across runs)."""
    return load_pretrained_clip(fig2_dataset.images, fig2_dataset.captions)


@pytest.fixture(scope="session")
def workload_images():
    """1,000 200x300 images for the Fig 2 (right) timing workload."""
    return make_attachments(500, 250, 250, rng=np.random.default_rng(11))


@pytest.fixture(scope="session")
def documents_100():
    """100 document images for the Fig 3 (left) OCR comparison."""
    return make_documents(n=100, rows_per_doc=10)
