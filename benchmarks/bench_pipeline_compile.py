"""Whole-pipeline kernel compilation benchmark (the PR 8 tentpole).

Runs a multi-stage relational chain — nested filter/project subqueries
feeding a grouped aggregate — and compares three execution paths over the
same statement:

* the per-operator **interpreter** (``compile_exprs=False``),
* the per-operator **expression kernels** (``compile_exprs=True``,
  ``compile_pipelines=False``): each Filter/Project materialises its
  output table, so every stage of the chain pays a gather and a set of
  column constructions over its surviving rows, and
* the **fused pipeline** (``compile_pipelines=True``): the pipeline
  compiler substitutes every stage onto the base scan's columns, so
  selection stays a mask/index vector end to end — one conjunction mask
  over the base, one gather of the rows that survive *all* stages, and
  the aggregate's inputs evaluated directly on the selected view.

The workload is shaped so the fusion win is structural, not accidental:
early stages are mildly selective (their per-operator gathers stay near
full-size) while the final stage is highly selective, so the fused path's
single gather is small. That is exactly the regime the per-operator path
cannot express — it has already materialised three near-full-size
intermediate tables by the time the selective tail runs.

Gating:

* **Bit-identity** (unconditional, any machine): every path — including
  ``compile_pipelines`` under shards 3 and 4, which lowers the grouped
  aggregate to per-shard partials with a merge at the stitch barrier —
  returns byte-identical group keys, counts and sums.
* **Latency** (gated at full scale): the fused pipeline must beat the
  per-operator kernel path by >= 2x. Both legs are serial numpy, so the
  ratio is core-count independent; below full scale
  (``REPRO_BENCH_SCALE < 1``) fixed per-query overheads dominate and the
  bench reports the ratio but gates only a >= 1.2x floor.
* **Plan shape**: EXPLAIN must show the fused subtree as a single
  ``CompiledPipeline[...]`` operator ending in the aggregate.
"""

import numpy as np

from repro.bench.harness import (
    bench_scale,
    print_table,
    record_metric,
    scaled,
    time_call,
)
from repro.core.session import Session

N_ROWS = scaled(400_000)

# Filter -> project chain (nested subqueries) -> grouped aggregate. The
# outermost WHERE is the selective tail; the inner stages keep most rows.
QUERY = ("SELECT s, COUNT(*) AS c, SUM(v) AS sm FROM "
         "(SELECT s, v, w, y FROM "
         " (SELECT s, v, w, y FROM "
         "  (SELECT s, v, x - b AS w, y FROM "
         "   (SELECT s, x, b, x + b AS v, y FROM t WHERE x > -48) q1 "
         "   WHERE b < 11) q2 "
         "  WHERE v % 97 != 0) q3 "
         " WHERE y < 2.5) q4 "
         "WHERE w > 35 GROUP BY s")

INTERP = {"compile_exprs": False, "compile_pipelines": False,
          "tensor_cache": False}
OP_KERNELS = {"compile_exprs": True, "compile_pipelines": False,
              "tensor_cache": False}
PIPELINE = {"compile_pipelines": True, "tensor_cache": False}
PIPELINE_SHARDED = [
    {"compile_pipelines": True, "tensor_cache": False,
     "shards": shards, "parallel_min_rows": 2}
    for shards in (3, 4)
]


def _session() -> Session:
    rng = np.random.default_rng(7)
    vocab = np.asarray([f"g{i:02d}" for i in range(24)], dtype=object)
    session = Session()
    session.sql.register_dict({
        "x": rng.integers(-50, 50, size=N_ROWS),
        "b": rng.integers(0, 12, size=N_ROWS),
        "y": rng.normal(size=N_ROWS).astype(np.float32),
        "s": vocab[rng.integers(0, len(vocab), size=N_ROWS)],
    }, "t")
    return session


def _snapshot(result):
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _assert_bitwise(a, b, context):
    assert list(a) == list(b), context
    for name in a:
        assert a[name].dtype == b[name].dtype, (context, name)
        assert np.array_equal(a[name], b[name],
                              equal_nan=a[name].dtype.kind == "f"), \
            (context, name)


class TestPipelineCompile:
    def test_fused_speedup_and_bit_identity(self, benchmark):
        session = _session()
        interp_q = session.sql.query(QUERY, extra_config=INTERP)
        kernel_q = session.sql.query(QUERY, extra_config=OP_KERNELS)
        pipeline_q = session.sql.query(QUERY, extra_config=PIPELINE)

        # Bit-identity across the whole shard x knob matrix first (also
        # warms every code path before timing).
        base = _snapshot(interp_q.run())
        assert base["c"].sum() > 0, "selective tail filtered everything out"
        _assert_bitwise(base, _snapshot(kernel_q.run()), "op-kernels")
        _assert_bitwise(base, _snapshot(pipeline_q.run()), "pipeline")
        for extra in PIPELINE_SHARDED:
            sharded = _snapshot(
                session.sql.query(QUERY, extra_config=extra).run())
            _assert_bitwise(base, sharded, f"pipeline shards={extra['shards']}")

        t_interp = time_call(interp_q.run, repeat=5)
        t_kernel = time_call(kernel_q.run, repeat=5)
        t_pipeline = time_call(pipeline_q.run, repeat=5)
        speedup = t_kernel / max(t_pipeline, 1e-9)
        full_scale = bench_scale() >= 1
        gate = 2.0 if full_scale else 1.2
        print_table(
            f"whole-pipeline codegen: 5-stage chain -> GROUP BY "
            f"({N_ROWS} rows)",
            ["path", "seconds", "vs op-kernels"],
            [["interpreter", t_interp, f"{t_kernel / t_interp:.2f}x"],
             ["op-kernels", t_kernel, "1.00x"],
             ["fused pipeline", t_pipeline, f"{speedup:.2f}x"]],
        )
        record_metric(
            "pipeline_compile",
            rows=N_ROWS, speedup=round(speedup, 2), gate=gate,
            interpreter_s=round(t_interp, 5), op_kernels_s=round(t_kernel, 5),
            pipeline_s=round(t_pipeline, 5),
        )
        assert speedup >= gate, (
            f"fused pipeline gained {speedup:.2f}x over the per-operator "
            f"kernel path (gate {gate}x at scale {bench_scale():g})")
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_plan_shows_single_fused_operator(self, benchmark):
        """The fused subtree is one CompiledPipeline operator ending in the
        aggregate — what EXPLAIN ANALYZE attributes pipeline spans to."""
        session = _session()
        text = session.sql.query(QUERY, extra_config=PIPELINE).explain()
        fused = [line for line in text.splitlines()
                 if "CompiledPipeline[" in line]
        assert len(fused) == 1, text
        assert "SortAggregate" in fused[0], fused[0]
        # The per-operator chain collapsed: no free-standing filter/project
        # physical operators remain below the fused pipeline.
        physical = text.split("== Physical operators ==")[1]
        assert "CompiledFilter(" not in physical.replace(
            fused[0].strip(), ""), text
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
